"""Fan report batches across simulated shards and reduce them.

:class:`ShardedCollector` models the ingestion tier of a deployed LDP
pipeline: ``K`` shards each own one mechanism instance and an independent
random stream, report batches are routed to shards (round-robin by default,
or explicitly by the caller), and a reduce step merges the shards'
sufficient statistics into one queryable mechanism.  Because accumulator
merging is exact (sums of sums), the reduced estimates follow the same
distribution as a one-shot fit of the whole population — shard count is a
pure throughput knob, invisible to accuracy.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.core.base import RangeQueryMechanism
from repro.core.factory import mechanism_from_spec
from repro.core.session import LdpRangeQuerySession
from repro.exceptions import ConfigurationError, NotFittedError
from repro.privacy.randomness import RandomState, spawn_generators

__all__ = ["ShardedCollector"]


class ShardedCollector:
    """Collect an LDP population across ``K`` independent shards.

    Parameters
    ----------
    mechanism:
        Mechanism specification string (see
        :func:`repro.core.factory.mechanism_from_spec`); every shard gets its
        own identically configured instance.
    epsilon, domain_size:
        Standard mechanism parameters, shared by all shards.
    n_shards:
        Number of simulated shards ``K >= 1``.
    random_state:
        Seed for the whole collection; each shard derives an independent
        stream from it, so results are reproducible for a fixed seed,
        routing and batch order.
    mode:
        Default simulation mode for submitted batches (``"aggregate"`` or
        ``"per_user"``), overridable per batch.
    mechanism_kwargs:
        Extra keyword arguments forwarded to every shard's constructor.
    """

    def __init__(
        self,
        mechanism: str,
        epsilon: float,
        domain_size: int,
        n_shards: int = 4,
        random_state: RandomState = None,
        mode: str = "aggregate",
        **mechanism_kwargs,
    ) -> None:
        if not isinstance(n_shards, (int, np.integer)) or n_shards < 1:
            raise ConfigurationError(
                f"n_shards must be a positive integer, got {n_shards!r}"
            )
        self._spec = str(mechanism)
        self._epsilon = float(epsilon)
        self._domain_size = int(domain_size)
        self._mechanism_kwargs = dict(mechanism_kwargs)
        self._mode = str(mode)
        self._shards: List[RangeQueryMechanism] = [
            self._make_mechanism() for _ in range(int(n_shards))
        ]
        self._generators = spawn_generators(random_state, int(n_shards))
        self._cursor = 0
        self._n_batches = 0

    def _make_mechanism(self) -> RangeQueryMechanism:
        return mechanism_from_spec(
            self._spec,
            epsilon=self._epsilon,
            domain_size=self._domain_size,
            **self._mechanism_kwargs,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        """Number of shards ``K``."""
        return len(self._shards)

    @property
    def shards(self) -> List[RangeQueryMechanism]:
        """The per-shard mechanism instances (mutated by :meth:`submit`)."""
        return list(self._shards)

    @property
    def n_users(self) -> int:
        """Total number of users accumulated across all shards."""
        return sum(shard.n_users or 0 for shard in self._shards)

    @property
    def n_batches(self) -> int:
        """Number of batches submitted so far."""
        return self._n_batches

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def submit(
        self,
        items: np.ndarray,
        shard: Optional[int] = None,
        mode: Optional[str] = None,
    ) -> int:
        """Route one batch of users to a shard and accumulate it.

        Parameters
        ----------
        items:
            Integer item array, one entry per user of the batch.  Every user
            must appear in exactly one submitted batch overall — the usual
            one-report-per-user LDP accounting.
        shard:
            Target shard index; round-robin when omitted (the scheduling a
            stateless load balancer would produce).
        mode:
            Override of the collector's default simulation mode.

        Returns
        -------
        int
            The index of the shard that absorbed the batch.
        """
        if shard is None:
            shard = self._cursor
            self._cursor = (self._cursor + 1) % len(self._shards)
        index = int(shard)
        if not 0 <= index < len(self._shards):
            raise ConfigurationError(
                f"shard index {shard!r} out of range for {len(self._shards)} shards"
            )
        self._shards[index].partial_fit(
            items,
            random_state=self._generators[index],
            mode=self._mode if mode is None else mode,
        )
        self._n_batches += 1
        return index

    def extend(self, batches: Iterable[np.ndarray]) -> "ShardedCollector":
        """Submit a stream of batches with round-robin routing."""
        for batch in batches:
            self.submit(batch)
        return self

    # ------------------------------------------------------------------
    # Reduction
    # ------------------------------------------------------------------
    def reduce(self) -> RangeQueryMechanism:
        """Merge all fitted shards into one fresh queryable mechanism.

        The shards keep their state, so ingestion may continue and
        :meth:`reduce` may be called again later — the streaming analytics
        pattern of querying a live collection.
        """
        fitted = [shard for shard in self._shards if shard.is_fitted]
        if not fitted:
            raise NotFittedError("no shard has collected any reports yet")
        reduced = self._make_mechanism()
        # Fold the statistics of all shards first, rebuild estimates once.
        for shard in fitted[:-1]:
            reduced.merge_from(shard, refresh=False)
        reduced.merge_from(fitted[-1])
        return reduced

    def session(self) -> LdpRangeQuerySession:
        """Wrap :meth:`reduce` in a high-level analysis session."""
        return LdpRangeQuerySession(
            epsilon=self._epsilon,
            domain_size=self._domain_size,
            mechanism=self.reduce(),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedCollector(mechanism={self._spec!r}, n_shards={self.n_shards}, "
            f"n_users={self.n_users}, n_batches={self._n_batches})"
        )
