"""Centralized hierarchical histogram (Hay et al. [16] / Qardaji et al. [21]).

The trusted aggregator materialises the complete B-ary tree of exact counts,
splits the privacy budget equally across the ``h`` levels (each level is a
partition of the data, so a single user affects one count per level with
sensitivity 1), adds Laplace noise of scale ``h / epsilon`` to every node,
and optionally applies the same constrained-inference post-processing used
in the local model.

This is the ``HHc_B`` column of the paper's Figure 7 (reproduced from
Qardaji et al.'s Table 3): the baseline against which the *local* behaviour
of hierarchical vs wavelet methods is contrasted.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.exceptions import InvalidDomainError, InvalidQueryError, NotFittedError
from repro.hierarchy.consistency import enforce_consistency
from repro.hierarchy.decomposition import decompose_to_runs
from repro.hierarchy.tree import DomainTree
from repro.privacy.budget import PrivacyBudget
from repro.privacy.randomness import RandomState, as_generator

__all__ = ["CentralHierarchicalHistogram"]


class CentralHierarchicalHistogram:
    """Centralized-DP hierarchical histogram with optional consistency.

    Parameters
    ----------
    epsilon:
        Total privacy budget, split equally across the ``h`` tree levels.
    domain_size:
        Number of items ``D``.
    branching:
        Tree fan-out ``B``.
    consistency:
        Apply Hay et al. constrained inference after noising.
    """

    def __init__(
        self,
        epsilon: float,
        domain_size: int,
        branching: int = 16,
        consistency: bool = True,
    ) -> None:
        self._budget = PrivacyBudget(epsilon)
        if not isinstance(domain_size, (int, np.integer)) or domain_size < 2:
            raise InvalidDomainError(
                f"domain size must be an integer >= 2, got {domain_size!r}"
            )
        self._domain_size = int(domain_size)
        self._tree = DomainTree(self._domain_size, branching)
        self._consistency = bool(consistency)
        self._levels: Optional[List[np.ndarray]] = None
        self._level_prefix: Optional[dict] = None
        self._n_users: Optional[int] = None

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    @property
    def epsilon(self) -> float:
        return self._budget.epsilon

    @property
    def domain_size(self) -> int:
        return self._domain_size

    @property
    def branching(self) -> int:
        return self._tree.branching

    @property
    def height(self) -> int:
        return self._tree.height

    @property
    def consistency(self) -> bool:
        return self._consistency

    @property
    def is_fitted(self) -> bool:
        return self._levels is not None

    def per_node_noise_scale(self) -> float:
        """Laplace scale ``h / epsilon`` applied to every node count."""
        return self._tree.height / self.epsilon

    def per_node_noise_variance(self) -> float:
        """Variance ``2 (h / epsilon)^2`` of each pre-consistency node."""
        scale = self.per_node_noise_scale()
        return 2.0 * scale**2

    # ------------------------------------------------------------------
    # Release
    # ------------------------------------------------------------------
    def fit_counts(
        self, counts: np.ndarray, random_state: RandomState = None
    ) -> "CentralHierarchicalHistogram":
        """Release the noisy (and optionally consistent) tree for a dataset."""
        counts = np.asarray(counts, dtype=np.float64)
        if counts.shape != (self._domain_size,):
            raise InvalidDomainError(
                f"expected {self._domain_size} counts, got shape {counts.shape}"
            )
        rng = as_generator(random_state)
        scale = self.per_node_noise_scale()
        noisy_levels: List[np.ndarray] = []
        for level in self._tree.levels:
            node_counts = self._tree.level_histogram_from_counts(level, counts)
            noise = rng.laplace(0.0, scale, size=node_counts.shape[0])
            noisy_levels.append(node_counts + noise)
        self._n_users = int(round(counts.sum()))
        if self._consistency:
            # The total count is assumed public (standard in this line of
            # work); it anchors the top level exactly like the local case.
            self._levels = enforce_consistency(
                noisy_levels, self.branching, root_value=float(counts.sum())
            )
        else:
            self._levels = noisy_levels
        self._level_prefix = {
            level: np.concatenate([[0.0], np.cumsum(self._levels[level - 1])])
            for level in self._tree.levels
        }
        return self

    # ------------------------------------------------------------------
    # Query answering
    # ------------------------------------------------------------------
    def answer_range(self, start: int, end: int, normalized: bool = True) -> float:
        """Range estimate; normalized to a population fraction by default."""
        if self._levels is None:
            raise NotFittedError("fit_counts must be called first")
        if not 0 <= start <= end < self._domain_size:
            raise InvalidQueryError(f"invalid range [{start}, {end}]")
        answer = 0.0
        for run in decompose_to_runs(self._tree, start, end):
            prefix = self._level_prefix[run.level]
            answer += prefix[run.last + 1] - prefix[run.first]
        if normalized:
            if not self._n_users:
                return 0.0
            answer /= float(self._n_users)
        return float(answer)

    def answer_ranges(self, queries: np.ndarray, normalized: bool = True) -> np.ndarray:
        """Vectorised :meth:`answer_range`."""
        queries = np.asarray(queries, dtype=np.int64)
        return np.array(
            [self.answer_range(int(a), int(b), normalized=normalized) for a, b in queries]
        )
