"""Integration tests: the parallel transports never change results or leak.

Two contracts from the runner docstring are pinned here:

* the ``(epsilon, spec, repetition)`` sweep is **bit-identical** across
  ``workers=1`` and ``workers>1`` under both the pickle and the
  shared-memory transport (generators are spawned in the parent in serial
  order, and the transported bytes are identical either way);
* the parent owns the shared-memory segment and unlinks it in a
  ``finally``, so even a hard worker crash (``BrokenProcessPool``) leaves
  nothing behind in ``/dev/shm``.
"""

import os

import numpy as np
import pytest
from concurrent.futures.process import BrokenProcessPool

from repro.data.workloads import RangeWorkload
from repro.experiments import runner
from repro.experiments.runner import evaluate_mechanism, run_epsilon_grid
from repro.experiments.transport import SharedArrayPack, shm_available

SEED = 20260807
SPECS = ["flat_oue", "hhc_4"]
EPSILONS = [0.5, 2.0]


@pytest.fixture
def counts():
    rng = np.random.default_rng(SEED)
    return rng.integers(0, 200, size=16).astype(np.int64)


@pytest.fixture
def workload():
    queries = np.array([[0, 3], [2, 9], [5, 5], [0, 15]], dtype=np.int64)
    return RangeWorkload(domain_size=16, queries=queries, name="transport-test")


class TestBitIdentity:
    @pytest.mark.parametrize("transport", ["pickle", "shm"])
    def test_grid_matches_serial_exactly(self, counts, workload, transport):
        serial = run_epsilon_grid(
            SPECS, counts, workload, EPSILONS, repetitions=2, random_state=SEED
        )
        parallel = run_epsilon_grid(
            SPECS,
            counts,
            workload,
            EPSILONS,
            repetitions=2,
            random_state=SEED,
            workers=2,
            transport=transport,
        )
        # Exact equality, not tolerance: the transport moves bytes, never
        # touches them, and the random streams are spawned in serial order.
        assert [cell.as_dict() for cell in parallel] == [
            cell.as_dict() for cell in serial
        ]

    @pytest.mark.parametrize("transport", ["pickle", "shm"])
    def test_evaluate_mechanism_matches_serial_exactly(
        self, counts, workload, transport
    ):
        serial = evaluate_mechanism(
            "flat_oue", counts, workload, epsilon=1.0, repetitions=4, random_state=SEED
        )
        parallel = evaluate_mechanism(
            "flat_oue",
            counts,
            workload,
            epsilon=1.0,
            repetitions=4,
            random_state=SEED,
            workers=2,
            transport=transport,
        )
        assert parallel.as_dict() == serial.as_dict()


def _crash_chunk(chunk):
    """Stand-in worker body: die without cleanup, mid-task."""
    os._exit(1)


@pytest.mark.skipif(not shm_available(), reason="shared memory unavailable")
class TestNoLeakedSegments:
    def test_clean_run_leaves_no_segment(self, counts, workload, monkeypatch):
        created = []
        real_create = SharedArrayPack.create.__func__

        def recording_create(cls, arrays):
            pack = real_create(cls, arrays)
            created.append(pack.name)
            return pack

        monkeypatch.setattr(SharedArrayPack, "create", classmethod(recording_create))
        run_epsilon_grid(
            ["flat_oue"],
            counts,
            workload,
            [1.0],
            repetitions=2,
            random_state=SEED,
            workers=2,
            transport="shm",
        )
        assert created, "the shm transport was not exercised"
        for name in created:
            assert not SharedArrayPack.segment_exists(name)

    def test_worker_crash_leaves_no_segment(self, counts, workload, monkeypatch):
        created = []
        real_create = SharedArrayPack.create.__func__

        def recording_create(cls, arrays):
            pack = real_create(cls, arrays)
            created.append(pack.name)
            return pack

        monkeypatch.setattr(SharedArrayPack, "create", classmethod(recording_create))
        monkeypatch.setattr(runner, "_chunk_mses", _crash_chunk)
        with pytest.raises(BrokenProcessPool):
            run_epsilon_grid(
                ["flat_oue"],
                counts,
                workload,
                [1.0],
                repetitions=2,
                random_state=SEED,
                workers=2,
                transport="shm",
            )
        assert created, "the shm transport was not exercised"
        # The parent's finally-block unlink must have reclaimed the segment
        # even though the workers died mid-task without any cleanup.
        for name in created:
            assert not SharedArrayPack.segment_exists(name)
