"""Mergeable accumulators: the oracles' sufficient statistics.

Every frequency oracle's aggregator is a *sum* over per-report
contributions — column sums of the bit matrix for the unary encodings,
per-item support tallies for OLH, per-symbol counts for GRR and per-index
coefficient sums for HRR — followed by a single linear decode.  An
:class:`OracleAccumulator` makes that structure explicit: it holds the
running sufficient statistic, accepts report batches (or simulated
aggregate-mode batches) incrementally with :meth:`add` / :meth:`add_counts`,
combines with another accumulator of the same configuration via
:meth:`merge`, and decodes the statistic into frequency estimates with
:meth:`estimate` at any point.

The laws the accumulators satisfy (and the tests verify):

* **merge-linearity** — ``merge`` is associative and commutative, and the
  merged estimate equals the user-count-weighted average of the parts'
  estimates;
* **one-shot equivalence** — accumulating a population in several batches
  follows exactly the same distribution as the one-shot
  ``aggregate`` / ``simulate_aggregate`` paths (which are themselves
  implemented on top of the accumulators, so the one-shot path *is* a
  single-batch accumulation).

This is what makes sharded and streaming collection possible: shards
accumulate independently and a reducer merges their statistics, with no
report matrices ever materialised.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Dict, Mapping

import numpy as np

from repro.exceptions import ConfigurationError
from repro.privacy.randomness import RandomState, as_generator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.frequency_oracles.base import FrequencyOracle, OracleReports

__all__ = ["OracleAccumulator"]


class OracleAccumulator(abc.ABC):
    """Mergeable aggregation state of one frequency oracle.

    Obtained from :meth:`FrequencyOracle.accumulator`; concrete subclasses
    live next to their oracle and define the sufficient statistic.  All
    mutating methods return ``self`` so calls can be chained.
    """

    def __init__(self, oracle: "FrequencyOracle") -> None:
        self._oracle = oracle
        self._n_users = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def oracle(self) -> "FrequencyOracle":
        """The oracle whose reports this accumulator aggregates."""
        return self._oracle

    @property
    def n_users(self) -> int:
        """Number of users accumulated so far."""
        return self._n_users

    # ------------------------------------------------------------------
    # Accumulation
    # ------------------------------------------------------------------
    def add(self, reports: "OracleReports") -> "OracleAccumulator":
        """Fold a batch of real user reports into the statistic."""
        self._add_reports(reports)
        self._n_users += int(reports.n_users)
        return self

    def add_items(
        self, values: np.ndarray, random_state: RandomState = None
    ) -> "OracleAccumulator":
        """Encode a batch of private items and accumulate their reports."""
        rng = as_generator(random_state)
        return self.add(self._oracle.encode_batch(np.asarray(values), rng))

    def add_counts(
        self, true_counts: np.ndarray, random_state: RandomState = None
    ) -> "OracleAccumulator":
        """Accumulate a simulated aggregate-mode batch from exact counts.

        Samples the statistic's increment directly, with the same
        distribution as encoding and adding the corresponding population
        (see each oracle's ``simulate_aggregate`` docstring for the exact
        vs. marginal guarantees).
        """
        counts = self._oracle._check_counts(true_counts)
        rng = as_generator(random_state)
        self._add_simulated(counts, rng)
        self._n_users += int(counts.sum())
        return self

    def merge(self, other: "OracleAccumulator") -> "OracleAccumulator":
        """Fold another accumulator's statistic into this one.

        Both accumulators must come from identically configured oracles
        (same class, epsilon, domain and protocol parameters); otherwise a
        :class:`~repro.exceptions.ConfigurationError` is raised and this
        accumulator is left untouched.
        """
        if type(other) is not type(self):
            raise ConfigurationError(
                f"cannot merge {type(other).__name__} into {type(self).__name__}"
            )
        mine = self._oracle.merge_signature()
        theirs = other._oracle.merge_signature()
        if mine != theirs:
            raise ConfigurationError(
                f"cannot merge accumulators of differently configured oracles: "
                f"{mine} != {theirs}"
            )
        self._merge_statistic(other)
        self._n_users += other._n_users
        return self

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """The full mutable state as named arrays (plus the user count).

        The returned dictionary, fed back through :meth:`load_state_dict` on
        an identically configured accumulator, reproduces the estimates
        bit-for-bit.  Used by :mod:`repro.persist` for crash recovery and
        cross-process shard transport.
        """
        state: Dict[str, np.ndarray] = {
            "n_users": np.asarray(self._n_users, dtype=np.int64)
        }
        for key, value in self._statistic_arrays().items():
            state[key] = np.array(value, copy=True)
        return state

    def load_state_dict(self, state: Mapping[str, np.ndarray]) -> "OracleAccumulator":
        """Replace this accumulator's state with a :meth:`state_dict`.

        Array shapes are validated against this accumulator's configuration;
        a mismatch (e.g. a snapshot taken over a different domain size)
        raises :class:`~repro.exceptions.ConfigurationError` without
        modifying the accumulator.
        """
        state = dict(state)
        if "n_users" not in state:
            raise ConfigurationError("accumulator state is missing 'n_users'")
        n_users = int(np.asarray(state.pop("n_users")))
        if n_users < 0:
            raise ConfigurationError(f"n_users must be >= 0, got {n_users}")
        template = self._statistic_arrays()
        if set(state) != set(template):
            raise ConfigurationError(
                f"accumulator state keys {sorted(state)} do not match the "
                f"expected statistic {sorted(template)}"
            )
        loaded = {}
        for key, current in template.items():
            value = np.asarray(state[key], dtype=current.dtype)
            if value.shape != current.shape:
                raise ConfigurationError(
                    f"statistic {key!r} has shape {value.shape}, expected "
                    f"{current.shape} for this configuration"
                )
            loaded[key] = value.copy()
        self._load_statistic_arrays(loaded)
        self._n_users = n_users
        return self

    @abc.abstractmethod
    def _statistic_arrays(self) -> Dict[str, np.ndarray]:
        """The sufficient-statistic arrays, keyed by stable schema names."""

    @abc.abstractmethod
    def _load_statistic_arrays(self, arrays: Dict[str, np.ndarray]) -> None:
        """Install validated statistic arrays (shapes/dtypes already checked)."""

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def estimate(self) -> np.ndarray:
        """Decode the statistic into unbiased per-item frequency estimates.

        Returns a length-``D`` float vector (all zeros before any users have
        been accumulated); may be called repeatedly and does not consume the
        statistic.
        """

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _add_reports(self, reports: "OracleReports") -> None:
        """Fold a validated batch of reports into the statistic."""

    @abc.abstractmethod
    def _add_simulated(self, counts: np.ndarray, rng: np.random.Generator) -> None:
        """Sample the statistic increment for an aggregate-mode batch."""

    @abc.abstractmethod
    def _merge_statistic(self, other: "OracleAccumulator") -> None:
        """Add a compatible accumulator's statistic to this one."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(oracle={type(self._oracle).__name__}, "
            f"n_users={self._n_users})"
        )
