"""Unit tests for repro.data.workloads."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, InvalidQueryError
from repro.data.workloads import (
    RangeWorkload,
    all_range_queries,
    evaluate_exact,
    fixed_length_queries,
    prefix_queries,
    random_range_queries,
    sampled_range_queries,
)


class TestRangeWorkload:
    def test_basic_properties(self):
        workload = RangeWorkload(domain_size=10, queries=[(0, 4), (2, 2)], name="w")
        assert len(workload) == 2
        np.testing.assert_array_equal(workload.lengths, [5, 1])

    def test_rejects_invalid_queries(self):
        with pytest.raises(InvalidQueryError):
            RangeWorkload(domain_size=10, queries=[(5, 4)])
        with pytest.raises(InvalidQueryError):
            RangeWorkload(domain_size=10, queries=[(0, 10)])
        with pytest.raises(InvalidQueryError):
            RangeWorkload(domain_size=10, queries=np.zeros((3, 3)))

    def test_true_answers(self):
        counts = np.array([1, 2, 3, 4])
        workload = RangeWorkload(domain_size=4, queries=[(0, 3), (1, 2), (3, 3)])
        np.testing.assert_allclose(workload.true_answers(counts), [1.0, 0.5, 0.4])

    def test_subset_respects_limit(self, rng):
        workload = all_range_queries(64)
        subset = workload.subset(100, random_state=rng)
        assert len(subset) == 100
        assert subset.domain_size == 64

    def test_subset_noop_when_small(self):
        workload = prefix_queries(16)
        assert workload.subset(1000) is workload

    def test_subset_validation(self):
        with pytest.raises(ConfigurationError):
            prefix_queries(16).subset(0)


class TestEvaluateExact:
    def test_normalization(self):
        counts = np.array([10, 0, 0, 10])
        answers = evaluate_exact(counts, np.array([[0, 0], [0, 3], [1, 2]]))
        np.testing.assert_allclose(answers, [0.5, 1.0, 0.0])

    def test_empty_population(self):
        answers = evaluate_exact(np.zeros(4), np.array([[0, 3]]))
        np.testing.assert_allclose(answers, [0.0])

    def test_query_exceeding_counts_rejected(self):
        with pytest.raises(InvalidQueryError):
            evaluate_exact(np.ones(4), np.array([[0, 4]]))


class TestGenerators:
    def test_all_range_queries_count(self):
        workload = all_range_queries(16)
        assert len(workload) == 16 * 17 // 2
        assert np.all(workload.queries[:, 0] <= workload.queries[:, 1])

    def test_all_range_queries_unique(self):
        workload = all_range_queries(12)
        assert len(np.unique(workload.queries, axis=0)) == len(workload)

    def test_fixed_length_queries(self):
        workload = fixed_length_queries(100, 10)
        assert len(workload) == 91
        assert np.all(workload.lengths == 10)

    def test_fixed_length_validation(self):
        with pytest.raises(InvalidQueryError):
            fixed_length_queries(10, 11)

    def test_prefix_queries(self):
        workload = prefix_queries(32)
        assert len(workload) == 32
        assert np.all(workload.queries[:, 0] == 0)
        np.testing.assert_array_equal(workload.queries[:, 1], np.arange(32))

    def test_sampled_range_queries_start_points(self):
        workload = sampled_range_queries(64, start_step=16)
        starts = np.unique(workload.queries[:, 0])
        np.testing.assert_array_equal(starts, [0, 16, 32, 48])
        # Every range beginning at a sampled start is present.
        assert len(workload) == 64 + 48 + 32 + 16

    def test_sampled_range_queries_validation(self):
        with pytest.raises(ConfigurationError):
            sampled_range_queries(64, start_step=0)

    def test_random_range_queries(self, rng):
        workload = random_range_queries(128, 50, random_state=rng)
        assert len(workload) == 50
        assert np.all(workload.queries[:, 0] <= workload.queries[:, 1])
        assert workload.queries.max() < 128

    def test_random_range_queries_validation(self):
        with pytest.raises(ConfigurationError):
            random_range_queries(10, -1)


class TestBoxWorkload:
    def test_basic_properties(self):
        from repro.data.workloads import BoxWorkload

        queries = np.array([[0, 3, 1, 2, 0, 0], [2, 2, 0, 7, 3, 5]])
        workload = BoxWorkload(domain_size=8, dims=3, queries=queries, name="w")
        assert len(workload) == 2
        np.testing.assert_array_equal(
            workload.axis_lengths, [[4, 2, 1], [1, 8, 3]]
        )

    def test_rejects_invalid_boxes(self):
        from repro.data.workloads import BoxWorkload

        with pytest.raises(InvalidQueryError):
            BoxWorkload(8, 2, np.array([[3, 1, 0, 0]]))  # start > end
        with pytest.raises(InvalidQueryError):
            BoxWorkload(8, 2, np.array([[0, 8, 0, 0]]))  # exceeds domain
        with pytest.raises(InvalidQueryError):
            BoxWorkload(8, 3, np.array([[0, 1, 0, 1]]))  # wrong column count

    def test_true_answers_match_direct_count(self):
        from repro.data.workloads import BoxWorkload, random_boxes

        rng = np.random.default_rng(9)
        points = rng.integers(0, 8, size=(5000, 3))
        counts = np.zeros((8, 8, 8))
        np.add.at(counts, tuple(points.T), 1)
        boxes = random_boxes(8, 25, dims=3, random_state=10)
        workload = BoxWorkload(8, 3, boxes)

        inside = np.ones(len(points), dtype=bool)[:, None]
        for axis in range(3):
            inside = inside & (
                (points[:, axis][:, None] >= boxes[:, 2 * axis])
                & (points[:, axis][:, None] <= boxes[:, 2 * axis + 1])
            )
        np.testing.assert_allclose(
            workload.true_answers(counts), inside.mean(axis=0)
        )

    def test_subset_respects_limit(self):
        from repro.data.workloads import BoxWorkload, random_boxes

        workload = BoxWorkload(16, 2, random_boxes(16, 50, random_state=11))
        subset = workload.subset(10, random_state=12)
        assert len(subset) == 10
        assert subset.dims == 2


class TestRandomBoxes:
    def test_shape_and_ordering(self):
        from repro.data.workloads import random_boxes

        boxes = random_boxes(32, 40, dims=4, random_state=13)
        assert boxes.shape == (40, 8)
        for axis in range(4):
            assert np.all(boxes[:, 2 * axis] <= boxes[:, 2 * axis + 1])
        assert boxes.min() >= 0 and boxes.max() < 32

    def test_random_rectangles_is_the_2d_alias(self):
        """Bit-for-bit RNG compatibility: the legacy name draws the same
        rectangles as random_boxes(dims=2) from the same seed."""
        from repro.data.workloads import random_boxes, random_rectangles

        np.testing.assert_array_equal(
            random_rectangles(32, 25, random_state=14),
            random_boxes(32, 25, dims=2, random_state=14),
        )
