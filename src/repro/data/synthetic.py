"""Synthetic input distributions.

The paper's experiments (Section 5, "Dataset Used") draw user items from a
truncated Cauchy distribution whose *center* sits at ``P * D`` (``P = 0.4``
by default) and whose *height* (scale) parameter is ``D / 10``; values
falling outside ``[0, D)`` are dropped.  The paper notes that accuracy is
largely insensitive to the data distribution, and Figure 8 sweeps ``P``.

Additional families (Zipf, Gaussian, uniform, bimodal) are provided so the
examples and tests can exercise skewed and sparse inputs beyond what the
paper shows.  Every generator returns a *probability vector* over the
domain; :func:`sample_counts` / :func:`sample_items` turn it into a finite
population.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, InvalidDomainError
from repro.privacy.randomness import RandomState, as_generator

__all__ = [
    "cauchy_probabilities",
    "zipf_probabilities",
    "gaussian_probabilities",
    "uniform_probabilities",
    "bimodal_probabilities",
    "sample_counts",
    "sample_items",
    "clustered_grid_points",
    "expected_counts",
]


def _check_domain(domain_size: int) -> int:
    if not isinstance(domain_size, (int, np.integer)) or domain_size < 1:
        raise InvalidDomainError(
            f"domain size must be a positive integer, got {domain_size!r}"
        )
    return int(domain_size)


def _normalize(weights: np.ndarray) -> np.ndarray:
    total = weights.sum()
    if not np.isfinite(total) or total <= 0:
        raise ConfigurationError("distribution weights must sum to a positive number")
    return weights / total


def cauchy_probabilities(
    domain_size: int,
    center_fraction: float = 0.4,
    height_fraction: float = 0.1,
) -> np.ndarray:
    """Truncated Cauchy distribution over ``[0, D)`` (the paper's default).

    Parameters
    ----------
    domain_size:
        Number of items ``D``.
    center_fraction:
        The paper's ``P``: the mode sits at ``P * D``.  Must be in ``(0, 1)``.
    height_fraction:
        Scale parameter as a fraction of ``D``; the paper uses ``D / 10``.
    """
    domain_size = _check_domain(domain_size)
    if not 0.0 < center_fraction < 1.0:
        raise ConfigurationError(
            f"center_fraction must be in (0, 1), got {center_fraction!r}"
        )
    if height_fraction <= 0.0:
        raise ConfigurationError(
            f"height_fraction must be positive, got {height_fraction!r}"
        )
    items = np.arange(domain_size, dtype=np.float64)
    center = center_fraction * domain_size
    height = height_fraction * domain_size
    weights = 1.0 / (1.0 + ((items - center) / height) ** 2)
    return _normalize(weights)


def zipf_probabilities(domain_size: int, exponent: float = 1.1) -> np.ndarray:
    """Zipf (power-law) distribution: ``p_i`` proportional to ``(i+1)^-s``."""
    domain_size = _check_domain(domain_size)
    if exponent <= 0.0:
        raise ConfigurationError(f"exponent must be positive, got {exponent!r}")
    ranks = np.arange(1, domain_size + 1, dtype=np.float64)
    return _normalize(ranks**-exponent)


def gaussian_probabilities(
    domain_size: int, center_fraction: float = 0.5, std_fraction: float = 0.1
) -> np.ndarray:
    """Discretised Gaussian over the domain."""
    domain_size = _check_domain(domain_size)
    if not 0.0 < center_fraction < 1.0:
        raise ConfigurationError(
            f"center_fraction must be in (0, 1), got {center_fraction!r}"
        )
    if std_fraction <= 0.0:
        raise ConfigurationError(f"std_fraction must be positive, got {std_fraction!r}")
    items = np.arange(domain_size, dtype=np.float64)
    center = center_fraction * domain_size
    std = std_fraction * domain_size
    weights = np.exp(-0.5 * ((items - center) / std) ** 2)
    return _normalize(weights)


def uniform_probabilities(domain_size: int) -> np.ndarray:
    """Uniform distribution over the domain."""
    domain_size = _check_domain(domain_size)
    return np.full(domain_size, 1.0 / domain_size)


def bimodal_probabilities(
    domain_size: int,
    centers: tuple = (0.25, 0.75),
    std_fraction: float = 0.05,
    mix: float = 0.5,
) -> np.ndarray:
    """Mixture of two discretised Gaussians (a simple multi-modal input)."""
    domain_size = _check_domain(domain_size)
    if not 0.0 < mix < 1.0:
        raise ConfigurationError(f"mix must be in (0, 1), got {mix!r}")
    first = gaussian_probabilities(domain_size, centers[0], std_fraction)
    second = gaussian_probabilities(domain_size, centers[1], std_fraction)
    return _normalize(mix * first + (1.0 - mix) * second)


def sample_counts(
    probabilities: np.ndarray, n_users: int, random_state: RandomState = None
) -> np.ndarray:
    """Draw a random population: multinomial per-item counts summing to N."""
    probabilities = np.asarray(probabilities, dtype=np.float64)
    if n_users < 0:
        raise ConfigurationError(f"n_users must be non-negative, got {n_users!r}")
    rng = as_generator(random_state)
    return rng.multinomial(int(n_users), _normalize(probabilities))


def sample_items(
    probabilities: np.ndarray, n_users: int, random_state: RandomState = None
) -> np.ndarray:
    """Draw ``n_users`` individual items from the distribution."""
    probabilities = np.asarray(probabilities, dtype=np.float64)
    if n_users < 0:
        raise ConfigurationError(f"n_users must be non-negative, got {n_users!r}")
    rng = as_generator(random_state)
    return rng.choice(probabilities.shape[0], size=int(n_users), p=_normalize(probabilities))


def clustered_grid_points(
    side: int,
    n_users: int,
    random_state: RandomState = None,
    hotspot_fraction: float = 0.7,
    dims: int = 2,
) -> np.ndarray:
    """Draw points on a ``[side]^dims`` grid with two hotspots.

    ``hotspot_fraction`` of the population concentrates around two Gaussian
    clusters (the spatial analogue of the 1-D Cauchy workloads) and the rest
    is uniform background; the cluster centres alternate low/high per axis
    so they stay well separated in any dimensionality.  Returns an
    ``(n_users, dims)`` ``int64`` array inside ``[0, side)^dims`` — the
    shape the grid mechanisms collect.  ``dims=2`` draws the exact
    historical random stream.
    """
    side = _check_domain(side)
    if n_users < 0:
        raise ConfigurationError(f"n_users must be non-negative, got {n_users!r}")
    if not 0.0 <= hotspot_fraction <= 1.0:
        raise ConfigurationError(
            f"hotspot_fraction must be in [0, 1], got {hotspot_fraction!r}"
        )
    if not isinstance(dims, (int, np.integer)) or dims < 1:
        raise ConfigurationError(f"dims must be a positive integer, got {dims!r}")
    dims = int(dims)
    rng = as_generator(random_state)
    n_hot = int(round(n_users * hotspot_fraction))
    n_first = n_hot // 2
    first_loc = tuple(side * (0.3 if axis % 2 == 0 else 0.7) for axis in range(dims))
    second_loc = tuple(side * (0.75 if axis % 2 == 0 else 0.25) for axis in range(dims))
    clusters = [
        rng.normal(loc=first_loc, scale=side * 0.08, size=(n_first, dims)),
        rng.normal(
            loc=second_loc,
            scale=side * 0.05,
            size=(n_hot - n_first, dims),
        ),
        rng.uniform(0, side, size=(int(n_users) - n_hot, dims)),
    ]
    points = np.concatenate(clusters) if n_users else np.empty((0, dims))
    return np.clip(np.floor(points), 0, side - 1).astype(np.int64)


def expected_counts(probabilities: np.ndarray, n_users: int) -> np.ndarray:
    """Deterministic integer counts close to ``N * p`` (largest remainders).

    Useful for reproducible tests where sampling noise in the *input* would
    obscure the estimation noise being measured.
    """
    probabilities = _normalize(np.asarray(probabilities, dtype=np.float64))
    if n_users < 0:
        raise ConfigurationError(f"n_users must be non-negative, got {n_users!r}")
    raw = probabilities * int(n_users)
    counts = np.floor(raw).astype(np.int64)
    remainder = int(n_users) - int(counts.sum())
    if remainder > 0:
        # Assign the leftover users to the items with the largest fractional
        # parts so the counts sum exactly to N.
        order = np.argsort(-(raw - counts))
        counts[order[:remainder]] += 1
    return counts
