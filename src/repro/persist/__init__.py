"""Durable, versioned persistence of LDP aggregation state.

The streaming tier (PR 1) made every oracle and mechanism *mergeable*; this
package makes the merged thing *durable*.  A snapshot captures an
accumulator's or fitted mechanism's sufficient statistic bit-for-bit in a
self-describing container (JSON schema header + npz array payload, see
:mod:`repro.persist.format`), so that

* a crashed ingestion shard resumes from its last checkpoint and ends up in
  **exactly** the state an uninterrupted run would have reached
  (:meth:`repro.streaming.ShardedCollector.checkpoint` /
  :meth:`~repro.streaming.ShardedCollector.restore`);
* accumulator state travels between machines or processes as plain bytes
  (the transport of :mod:`repro.service`'s multiprocessing executor);
* an analyst saves a fitted mechanism today and answers new range queries
  from the file tomorrow without re-collecting
  (:meth:`repro.core.session.LdpRangeQuerySession.save` / ``load``).

Compatibility is checked before any state moves: snapshots embed the merge
signature (mechanism class and spec parameters, epsilon, domain size,
oracle configuration), and restoring against a template with a different
signature raises :class:`~repro.exceptions.ConfigurationError`.  Snapshots
also carry a format version so newer files fail cleanly on older readers.

Example
-------
>>> import numpy as np
>>> from repro import LdpRangeQuerySession
>>> from repro import persist
>>> session = LdpRangeQuerySession(epsilon=1.0, domain_size=256, mechanism="hhc_4")
>>> _ = session.collect(np.random.default_rng(0).integers(0, 256, 100_000))
>>> data = persist.to_bytes(session.mechanism)          # ship or store
>>> restored = persist.from_bytes(data)                 # fully self-contained
>>> bool(np.array_equal(restored.estimate_frequencies(),
...                     session.mechanism.estimate_frequencies()))
True
"""

from repro.persist.format import (
    FORMAT_VERSION,
    MAGIC,
    pack_snapshot,
    unpack_snapshot,
    write_atomic,
)
from repro.persist.snapshots import (
    clone_unfitted,
    describe,
    from_bytes,
    load,
    mechanism_config,
    mechanism_from_config,
    normalize_signature,
    resolve_mechanism,
    save,
    to_bytes,
)

__all__ = [
    "FORMAT_VERSION",
    "MAGIC",
    "clone_unfitted",
    "describe",
    "from_bytes",
    "load",
    "mechanism_config",
    "mechanism_from_config",
    "normalize_signature",
    "pack_snapshot",
    "resolve_mechanism",
    "save",
    "to_bytes",
    "unpack_snapshot",
    "write_atomic",
]
