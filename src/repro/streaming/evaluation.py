"""Shared one-shot vs. sharded comparison used by the CLI demo and benchmarks.

Both surfaces answer the same question — does collecting through a
:class:`~repro.streaming.ShardedCollector` cost any accuracy compared to a
one-shot fit? — so the sweep lives here once and each caller only formats
the rows.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.factory import mechanism_from_spec
from repro.data.workloads import RangeWorkload
from repro.streaming.sharded import ShardedCollector

__all__ = ["one_shot_vs_sharded"]


def one_shot_vs_sharded(
    spec: str,
    epsilon: float,
    items: np.ndarray,
    workload: RangeWorkload,
    shard_counts: Sequence[int],
    seed: int,
    batches_for: Optional[Callable[[int], int]] = None,
) -> List[list]:
    """Collect ``items`` one-shot and through every shard count; tabulate.

    Parameters
    ----------
    spec, epsilon:
        Mechanism specification and privacy budget shared by every run.
    items:
        The population, one integer item per user.
    workload:
        Queries scored against the exact answers on ``items``.
    shard_counts:
        Shard counts ``K`` to sweep.
    seed:
        Base seed; each configuration derives its own stream from it.
    batches_for:
        Number of arrival batches as a function of ``K`` (default ``4 K``).

    Returns
    -------
    list of rows
        ``[label, n_shards, n_batches, mse_x1000, seconds]`` — one row for
        the one-shot baseline, then one per shard count.
    """
    domain = workload.domain_size
    counts = np.bincount(items, minlength=domain)
    truth = workload.true_answers(counts)
    batches_for = batches_for or (lambda n_shards: 4 * n_shards)

    def mse(mechanism) -> float:
        estimates = mechanism.answer_workload(workload)
        return float(np.mean((estimates - truth) ** 2))

    rows: List[list] = []
    start = time.perf_counter()
    one_shot = mechanism_from_spec(spec, epsilon=epsilon, domain_size=domain)
    one_shot.fit_items(items, random_state=seed)
    rows.append(["one-shot", 1, 1, mse(one_shot) * 1000.0, time.perf_counter() - start])

    for n_shards in shard_counts:
        collector = ShardedCollector(
            spec,
            epsilon=epsilon,
            domain_size=domain,
            n_shards=n_shards,
            random_state=seed + n_shards,
        )
        n_batches = max(int(batches_for(n_shards)), int(n_shards))
        start = time.perf_counter()
        collector.extend(np.array_split(items, n_batches))
        merged = collector.reduce()
        elapsed = time.perf_counter() - start
        rows.append(
            [f"sharded x{n_shards}", n_shards, n_batches, mse(merged) * 1000.0, elapsed]
        )
    return rows
