"""Hadamard Randomized Response (HRR) frequency oracle.

Section 3.2 of the paper: the user's one-hot vector ``e_v`` has the (scaled)
Hadamard transform ``phi[v][.]`` whose entries are all ``+-1``.  The user
samples one coefficient index ``j`` uniformly at random, perturbs the single
bit ``phi[v][j]`` with binary randomized response, and reports the pair
``(j, perturbed bit)`` — ``ceil(log2 D) + 1`` bits of communication.

The aggregator sums the unbiased per-report coefficient estimates, divides by
the number of users (after re-weighting for the ``1/D`` sampling rate) and
applies the inverse Hadamard transform to recover frequency estimates for
every item.  The per-item variance equals ``4 e^eps / (N (e^eps - 1)^2)``,
the same as OUE and OLH.

This oracle additionally supports *signed* one-hot inputs ``s * e_v`` with
``s`` in ``{-1, +1}``, which is exactly what the Haar wavelet mechanism
(Section 4.6) needs: negating the input merely negates the Hadamard
coefficients, so the same perturbation and decoding apply unchanged.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from repro.exceptions import InvalidQueryError
from repro.frequency_oracles.accumulators import OracleAccumulator
from repro.frequency_oracles.base import FrequencyOracle, OracleReports
from repro.privacy.mechanisms import binary_rr_probability
from repro.privacy.randomness import RandomState, as_generator
from repro.transforms.hadamard import (
    hadamard_entries,
    inverse_fast_walsh_hadamard_transform,
    is_power_of_two,
)

__all__ = ["HadamardAccumulator", "HadamardRandomizedResponse"]


class HadamardAccumulator(OracleAccumulator):
    """Sufficient statistic of HRR: per-index perturbed-coefficient sums.

    Each report contributes its (sign-carrying) perturbed bit to the sampled
    Hadamard index; the length-``D'`` sum vector plus the user count fully
    determine the decoded estimates, and sums from shards simply add.
    """

    def __init__(self, oracle: "HadamardRandomizedResponse") -> None:
        super().__init__(oracle)
        self._sums = np.zeros(oracle.padded_size, dtype=np.float64)

    def _add_reports(self, reports: OracleReports) -> None:
        indices = np.asarray(reports.payload["indices"], dtype=np.int64)
        values = np.asarray(reports.payload["values"], dtype=np.float64)
        if indices.shape != values.shape:
            raise InvalidQueryError("indices and values must have the same shape")
        self._sums += np.bincount(
            indices, weights=values, minlength=self._oracle.padded_size
        )

    def _add_simulated(self, counts: np.ndarray, rng: np.random.Generator) -> None:
        # HRR couples the sampled index with the user's item, so there is no
        # per-item closed form; expand the counts and run the exact batched
        # protocol (the same trick as ``simulate_aggregate``).
        values = np.repeat(np.arange(self._oracle.domain_size, dtype=np.int64), counts)
        reports = self._oracle.encode_batch(values, rng)
        self._add_reports(reports)

    def _merge_statistic(self, other: "HadamardAccumulator") -> None:
        self._sums += other._sums

    def _statistic_arrays(self) -> dict:
        return {"sums": self._sums}

    def _load_statistic_arrays(self, arrays: dict) -> None:
        self._sums = arrays["sums"]

    def estimate(self) -> np.ndarray:
        oracle = self._oracle
        if self._n_users == 0:
            return np.zeros(oracle.domain_size)
        # Each coefficient was sampled with probability 1/D', so the sum over
        # the users that picked index j estimates N/D' * (2p-1) * C_j.
        coefficient_estimates = (
            self._sums * oracle.padded_size / (self._n_users * oracle.unbiasing_factor)
        )
        estimates = inverse_fast_walsh_hadamard_transform(coefficient_estimates)
        return estimates[: oracle.domain_size]


def _next_power_of_two(value: int) -> int:
    power = 1
    while power < value:
        power <<= 1
    return power


class HadamardRandomizedResponse(FrequencyOracle):
    """HRR frequency oracle.

    Report layout (:meth:`encode`): ``{"index": int, "value": -1 or +1}``.

    Parameters
    ----------
    epsilon:
        Privacy budget per report.
    domain_size:
        Item domain size ``D``.  The Hadamard transform needs a power of
        two; other sizes are padded internally and the padding positions are
        dropped from the estimates, so callers never see them.
    """

    name = "hrr"

    def __init__(self, epsilon: float, domain_size: int) -> None:
        super().__init__(epsilon, domain_size)
        self._padded_size = (
            int(domain_size)
            if is_power_of_two(int(domain_size))
            else _next_power_of_two(int(domain_size))
        )
        self._keep_probability = binary_rr_probability(epsilon)

    @property
    def padded_size(self) -> int:
        """Power-of-two size of the Hadamard transform actually used."""
        return self._padded_size

    @property
    def keep_probability(self) -> float:
        """Probability ``p = e^eps / (1 + e^eps)`` of keeping the true bit."""
        return self._keep_probability

    @property
    def unbiasing_factor(self) -> float:
        """``2p - 1``, the factor dividing every report during decoding."""
        return 2.0 * self._keep_probability - 1.0

    # ------------------------------------------------------------------
    # User side
    # ------------------------------------------------------------------
    def encode(
        self, value: int, random_state: RandomState = None, sign: int = 1
    ) -> Dict[str, Any]:
        value = self._check_value(value)
        if sign not in (-1, 1):
            raise InvalidQueryError(f"sign must be -1 or +1, got {sign!r}")
        rng = as_generator(random_state)
        index = int(rng.integers(0, self._padded_size))
        coefficient = sign * int(hadamard_entries(np.array([value]), np.array([index]))[0])
        if rng.random() >= self._keep_probability:
            coefficient = -coefficient
        return {"index": index, "value": coefficient}

    def encode_batch(
        self,
        values: np.ndarray,
        random_state: RandomState = None,
        signs: Optional[np.ndarray] = None,
    ) -> OracleReports:
        values = self._check_values(values)
        rng = as_generator(random_state)
        n_users = values.shape[0]
        if signs is None:
            signs = np.ones(n_users, dtype=np.int64)
        else:
            signs = np.asarray(signs, dtype=np.int64)
            if signs.shape != (n_users,):
                raise InvalidQueryError("signs must have one entry per user")
            if signs.size and not np.all(np.isin(signs, (-1, 1))):
                raise InvalidQueryError("signs must be -1 or +1")
        indices = rng.integers(0, self._padded_size, size=n_users)
        coefficients = signs * hadamard_entries(values, indices)
        flip = rng.random(n_users) >= self._keep_probability
        coefficients = np.where(flip, -coefficients, coefficients)
        return OracleReports(
            payload={"indices": indices.astype(np.int64), "values": coefficients.astype(np.int64)},
            n_users=n_users,
        )

    # ------------------------------------------------------------------
    # Aggregator side
    # ------------------------------------------------------------------
    def accumulator(self) -> HadamardAccumulator:
        """Mergeable accumulator over the per-index coefficient sums."""
        return HadamardAccumulator(self)

    def aggregate(self, reports: OracleReports) -> np.ndarray:
        """Decode reports into (possibly signed) frequency estimates.

        Computes an unbiased estimate of every Hadamard coefficient of the
        population's mean (signed) indicator vector, then inverts the
        transform in ``O(D log D)``.
        """
        return self.accumulator().add(reports).estimate()

    def simulate_aggregate(
        self, true_counts: np.ndarray, random_state: RandomState = None
    ) -> np.ndarray:
        """Fast path: vectorised per-user protocol driven by the counts.

        HRR reports couple the sampled index with the user's item, so there
        is no per-item closed-form aggregate to sample from; instead the
        users' items are expanded from the counts (``O(N)`` memory) and the
        exact batched protocol is run.  This is still dramatically faster
        than Python-level per-user loops and is exact, not approximate.
        """
        return self.accumulator().add_counts(true_counts, random_state).estimate()

    def theoretical_variance(self, n_users: int) -> float:
        """``4 p (1 - p) / (N (2p - 1)^2) = 4 e^eps / (N (e^eps - 1)^2)``."""
        if n_users <= 0:
            raise InvalidQueryError(f"n_users must be positive, got {n_users!r}")
        p = self._keep_probability
        return 4.0 * p * (1.0 - p) / (n_users * (2.0 * p - 1.0) ** 2)
