"""Range query decomposition onto tree nodes.

A range query ``[a, b]`` is answered by summing the estimated weights of the
nodes in its B-adic decomposition.  To make evaluating large query workloads
cheap, the decomposition is expressed as *runs*: per tree level, a contiguous
span of node indices.  With per-level prefix sums of the estimates, each run
costs O(1) to evaluate, so a query costs ``O(B log_B D)`` regardless of its
length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.exceptions import InvalidQueryError
from repro.hierarchy.tree import DomainTree
from repro.transforms.badic import badic_decompose

__all__ = ["NodeRun", "decompose_to_runs", "runs_per_level"]


@dataclass(frozen=True)
class NodeRun:
    """A contiguous run of node indices at one tree level.

    Attributes
    ----------
    level:
        Tree level of the run (1 = children of the root, ``h`` = leaves).
    first, last:
        Inclusive node-index bounds of the run.
    """

    level: int
    first: int
    last: int

    @property
    def count(self) -> int:
        return self.last - self.first + 1


def decompose_to_runs(tree: DomainTree, start: int, end: int) -> List[NodeRun]:
    """Decompose a range query into per-level runs of tree nodes.

    Parameters
    ----------
    tree:
        Domain tree describing the hierarchy geometry.
    start, end:
        Inclusive item bounds of the query; must lie inside the original
        domain.

    Returns
    -------
    list of :class:`NodeRun`
        Runs over *tree* levels.  Adjacent B-adic intervals of the same size
        are merged into a single run, so the number of runs is at most two
        per level.
    """
    if not 0 <= start <= end < tree.domain_size:
        raise InvalidQueryError(
            f"invalid range [{start}, {end}] for domain of size {tree.domain_size}"
        )
    intervals = badic_decompose(start, end, tree.branching, domain_size=tree.padded_size)
    runs: List[NodeRun] = []
    for interval in intervals:
        # A B-adic interval of length B^j corresponds to a node at tree level
        # h - j with node index `interval.index`.
        level = tree.height - interval.level
        if level == 0:
            # The whole (padded) domain: weight is the root, which is exactly
            # the total fraction.  Express it as the full run of level-1
            # nodes so that callers never need a special root estimate.
            runs.append(NodeRun(level=1, first=0, last=tree.nodes_at_level(1) - 1))
            continue
        index = interval.index
        if runs and runs[-1].level == level and runs[-1].last == index - 1:
            runs[-1] = NodeRun(level=level, first=runs[-1].first, last=index)
        else:
            runs.append(NodeRun(level=level, first=index, last=index))
    return runs


def runs_per_level(runs: List[NodeRun]) -> Dict[int, List[NodeRun]]:
    """Group runs by tree level (helper for per-level evaluation)."""
    grouped: Dict[int, List[NodeRun]] = {}
    for run in runs:
        grouped.setdefault(run.level, []).append(run)
    return grouped
