"""Asynchronous ingestion tier over the sharded collector.

:class:`IngestionService` turns :class:`~repro.streaming.ShardedCollector`
into a concurrent service: any number of ``asyncio`` producers submit
report batches, a router assigns each batch to a shard, and one worker task
per shard drains that shard's queue in arrival order.  The moving parts:

* **per-shard worker queues** — each shard owns a bounded
  :class:`asyncio.Queue`; ordering *within a shard* is preserved, which is
  what keeps a fixed-seed run reproducible per shard;
* **backpressure** — ``submit`` awaits queue capacity, so producers slow
  down instead of buffering unboundedly when aggregation falls behind;
* **pluggable routing** — the collector's
  :class:`~repro.streaming.routing.ShardRouter` (round-robin, hash-by-user,
  least-loaded) decides placement at submit time, before queueing;
* **optional thread parallelism** — with ``parallelism > 0`` shard
  aggregation runs on a thread pool, overlapping the numpy work of
  different shards (shards share no mutable state, so this is safe).

Accuracy is untouched by any of it: the service feeds the same
``partial_fit`` path as synchronous collection, so the reduced estimates
follow the one-shot distribution regardless of producer count, queue sizes
or routing policy.

:func:`run_ingestion` is the synchronous convenience wrapper (CLI,
benchmarks): it spins up the service, fans a list of batches across ``P``
simulated producers, waits for the queues to drain and returns a throughput
report.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.base import RangeQueryMechanism
from repro.core.cache import DEFAULT_ANSWER_CACHE_SIZE
from repro.core.session import LdpRangeQuerySession
from repro.exceptions import ConfigurationError, ServiceOverloadedError
from repro.streaming.routing import RoutingKey
from repro.streaming.sharded import ShardedCollector

__all__ = ["IngestionReport", "IngestionService", "ShardQueueStats", "run_ingestion"]


@dataclass
class _Job:
    """One queued unit of work: a batch pinned to a shard."""

    items: np.ndarray
    shard: int
    mode: Optional[str]


@dataclass
class ShardQueueStats:
    """Per-shard ingestion counters (updated on the event-loop thread)."""

    batches: int = 0
    users: int = 0
    queue_peak: int = 0
    #: Batches bounced by the non-blocking path because this shard's queue
    #: was full — the backpressure signal the HTTP front turns into 503s.
    rejected: int = 0

    def fold(self, other: "ShardQueueStats") -> None:
        """Absorb a retired shard's counters (shrink rebalancing)."""
        self.batches += other.batches
        self.users += other.users
        self.rejected += other.rejected
        self.queue_peak = max(self.queue_peak, other.queue_peak)


@dataclass
class IngestionReport:
    """Outcome of one :func:`run_ingestion` sweep."""

    n_batches: int
    n_users: int
    n_producers: int
    n_shards: int
    router: str
    seconds: float
    shard_stats: List[ShardQueueStats] = field(default_factory=list)

    @property
    def users_per_second(self) -> float:
        return self.n_users / self.seconds if self.seconds > 0 else float("inf")


class IngestionService:
    """Async multi-producer front door of a :class:`ShardedCollector`.

    Parameters
    ----------
    collector:
        The sharded collector that owns the mechanisms, random streams and
        routing policy.  The service never bypasses it, so synchronous
        ``submit`` calls may be mixed in (e.g. replaying a backlog) as long
        as they happen on the event-loop thread.
    queue_size:
        Capacity of each shard's queue; ``submit`` blocks (asynchronously)
        when the target shard is this far behind — the backpressure knob.
    parallelism:
        ``0`` (default) aggregates on the event-loop thread; ``> 0`` runs
        shard aggregation on a thread pool of that size so distinct shards
        overlap.
    query_cache_size:
        Entry bound of the answer cache installed on each materialized
        :meth:`query_view` (``0`` disables caching — every query recomputes).

    Use as an async context manager::

        async with IngestionService(collector) as service:
            await asyncio.gather(*(produce(service) for _ in range(8)))
        mechanism = collector.reduce()

    (exiting the context drains the queues before stopping the workers).
    """

    def __init__(
        self,
        collector: ShardedCollector,
        queue_size: int = 8,
        parallelism: int = 0,
        query_cache_size: int = DEFAULT_ANSWER_CACHE_SIZE,
    ) -> None:
        if not isinstance(collector, ShardedCollector):
            raise ConfigurationError(
                f"IngestionService wraps a ShardedCollector, got {type(collector).__name__}"
            )
        if not isinstance(queue_size, (int, np.integer)) or queue_size < 1:
            raise ConfigurationError(
                f"queue_size must be a positive integer, got {queue_size!r}"
            )
        if not isinstance(parallelism, (int, np.integer)) or parallelism < 0:
            raise ConfigurationError(
                f"parallelism must be a non-negative integer, got {parallelism!r}"
            )
        if not isinstance(query_cache_size, (int, np.integer)) or query_cache_size < 0:
            raise ConfigurationError(
                f"query_cache_size must be a non-negative integer, "
                f"got {query_cache_size!r}"
            )
        self._collector = collector
        self._queue_size = int(queue_size)
        self._parallelism = int(parallelism)
        self._query_cache_size = int(query_cache_size)
        # Read-serving state: the latest reduced + materialized view of the
        # sharded statistics, keyed by the collector's generation signature
        # so a new batch (or scale event) forces a rebuild on the next read.
        self._query_view: Optional[RangeQueryMechanism] = None
        self._query_view_signature: Optional[tuple] = None
        self._query_views_built = 0
        # Counters folded in from retired views so the service's cache
        # hit/miss/eviction totals stay monotone across view rebuilds.
        self._retired_cache_counters = {"hits": 0, "misses": 0, "evictions": 0}
        self._queues: Optional[List[asyncio.Queue]] = None
        self._workers: List[asyncio.Task] = []
        self._pool: Optional[ThreadPoolExecutor] = None
        self._errors: List[BaseException] = []
        self._stats = [ShardQueueStats() for _ in range(collector.n_shards)]
        self._submitted_batches = 0
        self._submitted_users = 0
        # Monotonic totals: unlike the per-shard counters, these survive
        # shrink events (a retired shard's history must not vanish from the
        # metrics surface), so /metrics can export them as Prometheus
        # counters without ever going backwards.
        self._absorbed_batches_total = 0
        self._absorbed_users_total = 0
        self._rejected_batches_total = 0
        self._rejected_users_total = 0
        self._grow_events = 0
        self._shrink_events = 0
        # Scaling happens at generation boundaries: the gate parks blocking
        # submitters (and bounces non-blocking ones) while the shard set is
        # being reshaped, and the pending-put counter lets the quiesce loop
        # prove that no batch is still in flight toward a queue.  The gate is
        # created in start() so it binds to the serving loop (Python 3.9
        # binds primitives to a loop at construction time).
        self._scale_gate: Optional[asyncio.Event] = None
        self._scaling = False
        self._pending_puts = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def collector(self) -> ShardedCollector:
        return self._collector

    @property
    def started(self) -> bool:
        return self._queues is not None

    @property
    def shard_stats(self) -> List[ShardQueueStats]:
        """Per-shard counters (batches, users, queue high-water mark)."""
        return list(self._stats)

    @property
    def n_submitted_users(self) -> int:
        return self._submitted_users

    @property
    def n_submitted_batches(self) -> int:
        return self._submitted_batches

    def stats(self) -> dict:
        """Queue and ingest counters, one JSON-ready dictionary.

        The metrics-export surface of the service (ROADMAP "queue metrics
        export"): submission totals, per-shard absorption counters, live
        queue depths and high-water marks, and the lazy-materialization
        counters of every shard mechanism — ``ingest_generation`` (batches
        absorbed into the statistics), ``materializations_performed``
        (estimate rebuilds that actually ran) and
        ``materializations_deferred`` (rebuilds the lazy read-path saved
        compared to refreshing after every batch).  Safe to call at any
        point of the lifecycle, including before :meth:`start` and while
        producers are running (counters are updated on the event-loop
        thread; a concurrent snapshot may be one batch stale, never torn
        mid-shard).
        """
        per_shard = []
        stream_ids = self._collector.stream_ids
        for index, shard in enumerate(self._collector.shards):
            stat = self._stats[index]
            queue = self._queues[index] if self._queues is not None else None
            ingest = int(getattr(shard, "ingest_generation", 0))
            performed = int(getattr(shard, "materialization_count", 0))
            per_shard.append(
                {
                    "shard": index,
                    "stream": int(stream_ids[index]),
                    "batches": int(stat.batches),
                    "users": int(stat.users),
                    "rejected": int(stat.rejected),
                    "queue_depth": queue.qsize() if queue is not None else 0,
                    "queue_peak": int(stat.queue_peak),
                    "ingest_generation": ingest,
                    "materializations_performed": performed,
                    "materializations_deferred": max(0, ingest - performed),
                }
            )
        from repro import kernels

        return {
            "started": self.started,
            "scaling": bool(self._scaling),
            "n_shards": self._collector.n_shards,
            "queue_size": int(self._queue_size),
            "router": self._collector.router.name,
            # Which repro.kernels backend decodes this service's reports —
            # operators comparing throughput across deployments need it.
            "kernel_backend": kernels.active_backend(),
            "submitted_batches": int(self._submitted_batches),
            "submitted_users": int(self._submitted_users),
            "absorbed_batches": sum(entry["batches"] for entry in per_shard),
            "absorbed_users": sum(entry["users"] for entry in per_shard),
            "queue_depths": [entry["queue_depth"] for entry in per_shard],
            "queue_peaks": [entry["queue_peak"] for entry in per_shard],
            "materializations_performed": sum(
                entry["materializations_performed"] for entry in per_shard
            ),
            "materializations_deferred": sum(
                entry["materializations_deferred"] for entry in per_shard
            ),
            "totals": {
                "submitted_batches": int(self._submitted_batches),
                "submitted_users": int(self._submitted_users),
                "absorbed_batches": int(self._absorbed_batches_total),
                "absorbed_users": int(self._absorbed_users_total),
                "rejected_batches": int(self._rejected_batches_total),
                "rejected_users": int(self._rejected_users_total),
                "grow_events": int(self._grow_events),
                "shrink_events": int(self._shrink_events),
                "streams_spawned": int(self._collector.streams_spawned),
            },
            "query": self._query_stats(),
            "per_shard": per_shard,
        }

    def _query_stats(self) -> dict:
        """Read-serving counters: views built plus the answer-cache
        counters, accumulated across view rebuilds so they stay monotone
        (a generation bump retires the old view's cache; its hit/miss
        history must not vanish from the service's counters)."""
        view = self._query_view
        if view is not None:
            cache = view.answer_cache_stats()
            for key, value in self._retired_cache_counters.items():
                cache[key] += value
        else:
            cache = {
                "hits": 0,
                "misses": 0,
                "evictions": 0,
                "size": 0,
                "maxsize": int(self._query_cache_size),
            }
        return {
            "views_built": int(self._query_views_built),
            "view_generation": (
                int(getattr(view, "ingest_generation", 0)) if view is not None else 0
            ),
            "answer_cache": cache,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "IngestionService":
        """Create the shard queues and spawn one worker task per shard."""
        if self.started:
            raise ConfigurationError("ingestion service is already started")
        if self._parallelism:
            self._pool = ThreadPoolExecutor(
                max_workers=self._parallelism,
                thread_name_prefix="repro-ingest",
            )
        self._scale_gate = asyncio.Event()
        self._scale_gate.set()
        self._queues = [
            asyncio.Queue(maxsize=self._queue_size)
            for _ in range(self._collector.n_shards)
        ]
        self._workers = [
            asyncio.create_task(self._worker(shard), name=f"repro-shard-{shard}")
            for shard in range(self._collector.n_shards)
        ]
        return self

    async def stop(self) -> None:
        """Cancel the workers and release the thread pool (no draining).

        A worker task is only ever supposed to end via cancellation; any
        other exception that killed one (a bug in the queue plumbing, a
        corrupted job) is collected here and re-raised after cleanup —
        previously those results were gathered and silently discarded
        (lint rule LDP-R004), so a dead shard looked like a clean stop.
        """
        for task in self._workers:
            task.cancel()
        results = await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        self._queues = None
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        failures = [
            result
            for result in results
            if isinstance(result, BaseException)
            and not isinstance(result, asyncio.CancelledError)
        ]
        if failures:
            self._errors.extend(failures)
            raise failures[0]

    async def join(self) -> None:
        """Wait until every queued batch has been aggregated.

        Re-raises the first worker error, if any batch failed.
        """
        self._require_started()
        await asyncio.gather(*(queue.join() for queue in self._queues))
        self._raise_pending_error()

    # ------------------------------------------------------------------
    # Autoscaling
    # ------------------------------------------------------------------
    async def _quiesce(self) -> None:
        """Drain every queue *and* every in-flight put — a generation
        boundary: no batch is queued, being absorbed, or travelling toward
        a queue.  Only meaningful with the scale gate closed (otherwise new
        submissions keep arriving and the boundary never materialises)."""
        while True:
            await asyncio.gather(*(queue.join() for queue in self._queues))
            if self._pending_puts == 0 and all(
                queue.qsize() == 0 for queue in self._queues
            ):
                return
            # A producer that was already blocked on a full queue when the
            # gate closed may still land its batch; yield and re-drain.
            await asyncio.sleep(0)

    async def scale_to(self, n_shards: int) -> "IngestionService":
        """Grow or shrink the shard set to ``n_shards`` at a generation
        boundary.

        The service closes the scale gate (blocking submitters park,
        non-blocking ones get backpressure), drains every queue, then asks
        the collector to reshape: growth spawns fresh mechanisms on the
        seed's next random streams, shrink rebalances each retired shard's
        sufficient statistics into the least-loaded survivor via
        ``merge_from``.  Because merging is exact and happens while no batch
        is in flight, the eventual ``reduce()`` is bit-identical to a static
        run that pinned every batch to the same streams — shard count
        remains a pure throughput knob even when it changes mid-run.
        """
        self._require_started()
        if not isinstance(n_shards, (int, np.integer)) or n_shards < 1:
            raise ConfigurationError(
                f"n_shards must be a positive integer, got {n_shards!r}"
            )
        if self._scaling:
            raise ConfigurationError("a scale event is already in progress")
        target = int(n_shards)
        current = self._collector.n_shards
        if target == current:
            return self
        self._scaling = True
        self._scale_gate.clear()
        try:
            await self._quiesce()
            self._raise_pending_error()
            if target > current:
                for index in self._collector.add_shards(target - current):
                    self._queues.append(asyncio.Queue(maxsize=self._queue_size))
                    self._stats.append(ShardQueueStats())
                    self._workers.append(
                        asyncio.create_task(
                            self._worker(index), name=f"repro-shard-{index}"
                        )
                    )
                self._grow_events += 1
            else:
                # Retire the tail workers first — their queues are drained,
                # so cancellation cannot lose a batch.
                doomed = self._workers[target:]
                del self._workers[target:]
                for task in doomed:
                    task.cancel()
                results = await asyncio.gather(*doomed, return_exceptions=True)
                failures = [
                    result
                    for result in results
                    if isinstance(result, BaseException)
                    and not isinstance(result, asyncio.CancelledError)
                ]
                if failures:
                    self._errors.extend(failures)
                for _stream, survivor in self._collector.shrink_to(target):
                    self._stats[survivor].fold(self._stats.pop())
                    self._queues.pop()
                self._shrink_events += 1
                self._raise_pending_error()
        finally:
            self._scaling = False
            self._scale_gate.set()
        return self

    async def __aenter__(self) -> "IngestionService":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        try:
            if exc_type is None:
                await self.join()
        finally:
            await self.stop()

    # ------------------------------------------------------------------
    # Producing
    # ------------------------------------------------------------------
    async def submit(
        self,
        items: np.ndarray,
        mode: Optional[str] = None,
        key: RoutingKey = None,
    ) -> int:
        """Route one batch and enqueue it, awaiting shard capacity.

        Returns the shard index the batch was routed to.  Many producers
        may call this concurrently; the router is consulted on the
        event-loop thread, so routing decisions are serialised even when
        aggregation runs on a thread pool.
        """
        self._require_started()
        self._raise_pending_error()
        # Park while a scale event reshapes the shard set; routing against a
        # shard list that is about to change would race the autoscaler.
        await self._scale_gate.wait()
        # Validate before routing: a rejected batch must not consume an
        # irreversible routing decision or reserve least-loaded capacity.
        items = self._collector.validate_batch(items, mode=mode)
        shard = self._collector.route(int(items.shape[0]), key=key)
        queue = self._queues[shard]
        self._pending_puts += 1
        try:
            await queue.put(_Job(items=items, shard=shard, mode=mode))
        finally:
            self._pending_puts -= 1
        stats = self._stats[shard]
        stats.queue_peak = max(stats.queue_peak, queue.qsize())
        self._submitted_batches += 1
        self._submitted_users += int(items.shape[0]) if items.ndim else 0
        return shard

    def try_submit(
        self,
        items: np.ndarray,
        mode: Optional[str] = None,
        key: RoutingKey = None,
    ) -> int:
        """Route one batch and enqueue it *without waiting* for capacity.

        The network front's variant of :meth:`submit`: where producers
        inside the process can simply be slowed down by an ``await``, a
        remote producer must instead be *told* to back off.  When the routed
        shard's queue is full (or the service is mid-scale) the batch is
        dropped, the shard's ``rejected`` counter increments, the routed
        load is handed back to the router, and
        :class:`~repro.exceptions.ServiceOverloadedError` is raised — the
        HTTP layer maps it to ``503`` + ``Retry-After``.  Synchronous (no
        ``await``), so it can only be called from the event-loop thread.
        """
        self._require_started()
        self._raise_pending_error()
        if not self._scale_gate.is_set():
            raise ServiceOverloadedError(
                "service is rebalancing shards; retry shortly"
            )
        items = self._collector.validate_batch(items, mode=mode)
        n_items = int(items.shape[0])
        shard = self._collector.route(n_items, key=key)
        queue = self._queues[shard]
        try:
            queue.put_nowait(_Job(items=items, shard=shard, mode=mode))
        except asyncio.QueueFull:
            self._collector.release_route(shard, n_items)
            self._stats[shard].rejected += 1
            self._rejected_batches_total += 1
            self._rejected_users_total += n_items
            raise ServiceOverloadedError(
                f"shard {shard} queue is full ({queue.maxsize} batches); "
                "retry later"
            ) from None
        stats = self._stats[shard]
        stats.queue_peak = max(stats.queue_peak, queue.qsize())
        self._submitted_batches += 1
        self._submitted_users += n_items
        return shard

    async def submit_points(
        self,
        points: np.ndarray,
        mode: Optional[str] = None,
        key: RoutingKey = None,
    ) -> int:
        """Route one batch of ``(n, d)`` coordinate points and enqueue it.

        The async counterpart of
        :meth:`~repro.streaming.ShardedCollector.submit_points`: points are
        validated (column count against the grid mechanism's
        dimensionality, integer dtype, bounds) and flattened *before* any
        routing decision is consumed, then follow the normal :meth:`submit`
        path (backpressure included).
        """
        flatten = getattr(self._collector.shards[0], "flatten_points", None)
        if flatten is None:
            raise ConfigurationError(
                "the collector's mechanism has no grid point surface; "
                "submit flattened items with submit() instead"
            )
        return await self.submit(flatten(points), mode=mode, key=key)

    # ------------------------------------------------------------------
    # Reduction
    # ------------------------------------------------------------------
    def reduce(self) -> RangeQueryMechanism:
        """Merge the shards into one queryable mechanism (queues must be
        drained first — call :meth:`join` or exit the context manager)."""
        return self._collector.reduce()

    def session(self) -> LdpRangeQuerySession:
        """Wrap :meth:`reduce` in a high-level analysis session."""
        return self._collector.session()

    # ------------------------------------------------------------------
    # Read serving
    # ------------------------------------------------------------------
    @property
    def query_view(self) -> Optional[RangeQueryMechanism]:
        """The latest built read view (``None`` before the first read)."""
        return self._query_view

    @property
    def query_views_built(self) -> int:
        """Reduced+materialized views built so far (cache-miss counter)."""
        return self._query_views_built

    async def refresh_query_view(self) -> RangeQueryMechanism:
        """A reduced, materialized, answer-cached view of the live shards.

        The read side of the service: returns the cached view as long as
        the collector's :meth:`~repro.streaming.ShardedCollector
        .generation_signature` is unchanged (O(shards) integer compares per
        request); otherwise drains the shard queues to a generation
        boundary, reduces, materializes the estimates off the per-query
        path and installs a fresh answer cache of ``query_cache_size``
        entries.  Reads therefore see every batch that was *absorbed* when
        the view was built — the same freshness contract ``reduce()`` on a
        live collection offers — while repeated queries between writes stay
        O(1) cache hits.

        Raises :class:`~repro.exceptions.NotFittedError` while no shard has
        absorbed anything yet.
        """
        self._require_started()
        signature = self._collector.generation_signature()
        if self._query_view is not None and signature == self._query_view_signature:
            return self._query_view
        # Drain to a generation boundary before the synchronous reduce: a
        # queue.join() only returns once every in-flight absorb (including
        # thread-pool ones) has called task_done, so no worker can be
        # mutating a shard's statistics while reduce() reads them.
        while True:
            await asyncio.gather(*(queue.join() for queue in self._queues))
            if self._pending_puts == 0 and all(
                queue.qsize() == 0 for queue in self._queues
            ):
                break
            await asyncio.sleep(0)
        self._raise_pending_error()
        signature = self._collector.generation_signature()
        view = self._collector.reduce()
        view.set_answer_cache_size(self._query_cache_size)
        view.materialize()
        if self._query_view is not None:
            retired = self._query_view.answer_cache_stats()
            for key in self._retired_cache_counters:
                self._retired_cache_counters[key] += int(retired[key])
        self._query_view = view
        self._query_view_signature = signature
        self._query_views_built += 1
        return view

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _require_started(self) -> None:
        if not self.started:
            raise ConfigurationError(
                "ingestion service is not running; use 'async with' or await start()"
            )

    def _raise_pending_error(self) -> None:
        if self._errors:
            raise self._errors[0]

    async def _worker(self, shard: int) -> None:
        queue = self._queues[shard]
        loop = asyncio.get_running_loop()
        while True:
            job = await queue.get()
            try:
                if self._pool is None:
                    self._collector.submit(job.items, shard=shard, mode=job.mode)
                else:
                    await loop.run_in_executor(
                        self._pool, self._collector.submit, job.items, shard, job.mode
                    )
                stats = self._stats[shard]
                stats.batches += 1
                stats.users += int(job.items.shape[0])
                self._absorbed_batches_total += 1
                self._absorbed_users_total += int(job.items.shape[0])
            except asyncio.CancelledError:  # pragma: no cover - stop() path
                queue.task_done()
                raise
            except BaseException as error:  # noqa: BLE001 - reported via join()
                self._errors.append(error)
            finally:
                queue.task_done()


async def _produce(
    service: IngestionService,
    batches: Sequence[np.ndarray],
    keys: Optional[Sequence[RoutingKey]],
    mode: Optional[str],
) -> None:
    for index, batch in enumerate(batches):
        key = keys[index] if keys is not None else None
        await service.submit(batch, mode=mode, key=key)


def run_ingestion(
    collector: ShardedCollector,
    batches: Sequence[np.ndarray],
    n_producers: int = 1,
    queue_size: int = 8,
    parallelism: int = 0,
    keys: Optional[Sequence[RoutingKey]] = None,
    mode: Optional[str] = None,
) -> IngestionReport:
    """Drive a full async ingestion of ``batches`` and report throughput.

    The batch list is dealt round-robin across ``n_producers`` concurrent
    producer coroutines (batch ``i`` to producer ``i mod P``), which all
    submit into the shared service under backpressure.  Blocks until every
    batch has been aggregated; afterwards ``collector.reduce()`` is ready.

    Must be called from synchronous code; inside a running event loop use
    :class:`IngestionService` directly.
    """
    if not isinstance(n_producers, (int, np.integer)) or n_producers < 1:
        raise ConfigurationError(
            f"n_producers must be a positive integer, got {n_producers!r}"
        )
    batches = list(batches)
    if keys is not None and len(keys) != len(batches):
        raise ConfigurationError(
            f"got {len(keys)} routing keys for {len(batches)} batches"
        )
    try:
        asyncio.get_running_loop()
    except RuntimeError:
        pass
    else:
        raise ConfigurationError(
            "run_ingestion cannot be called from a running event loop; "
            "use IngestionService directly"
        )

    async def _main() -> IngestionReport:
        start = time.perf_counter()
        async with IngestionService(
            collector, queue_size=queue_size, parallelism=parallelism
        ) as service:
            producers = [
                _produce(
                    service,
                    batches[producer::n_producers],
                    None if keys is None else keys[producer::n_producers],
                    mode,
                )
                for producer in range(int(n_producers))
            ]
            await asyncio.gather(*producers)
            await service.join()
            stats = service.shard_stats
        seconds = time.perf_counter() - start
        return IngestionReport(
            n_batches=len(batches),
            n_users=sum(int(np.asarray(batch).shape[0]) for batch in batches),
            n_producers=int(n_producers),
            n_shards=collector.n_shards,
            router=collector.router.name,
            seconds=seconds,
            shard_stats=stats,
        )

    return asyncio.run(_main())
