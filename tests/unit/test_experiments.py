"""Unit tests for the experiment harness (config, runner, reporting)."""

import numpy as np
import pytest

from repro.data.workloads import all_range_queries
from repro.exceptions import ConfigurationError
from repro.experiments.config import LAPTOP_SCALE, PAPER_SCALE, DataConfig, ExperimentConfig
from repro.experiments.reporting import format_table, pivot_by_epsilon, render_results
from repro.experiments.runner import CellResult, evaluate_mechanism, run_epsilon_grid


class TestConfig:
    def test_paper_scale_matches_paper(self):
        assert PAPER_SCALE.n_users == 1 << 26
        assert PAPER_SCALE.repetitions == 5
        assert (1 << 22) in PAPER_SCALE.domain_sizes

    def test_laptop_scale_is_smaller(self):
        assert LAPTOP_SCALE.n_users < PAPER_SCALE.n_users

    def test_data_config_counts(self):
        config = DataConfig(center_fraction=0.4)
        counts = config.counts(128, 10_000)
        assert counts.sum() == 10_000
        assert abs(int(np.argmax(counts)) - 51) <= 2  # mode near P * D

    def test_scaled_override(self):
        config = LAPTOP_SCALE.scaled(n_users=1000, repetitions=1)
        assert config.n_users == 1000
        assert config.repetitions == 1
        # The original is untouched (frozen dataclass).
        assert LAPTOP_SCALE.n_users != 1000

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(n_users=0)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(repetitions=0)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(workers=0)

    def test_workers_default_serial(self):
        assert LAPTOP_SCALE.workers == 1


class TestRunner:
    @pytest.fixture
    def counts(self):
        return DataConfig().counts(64, 50_000)

    @pytest.fixture
    def workload(self):
        return all_range_queries(64)

    def test_evaluate_mechanism_fields(self, counts, workload):
        cell = evaluate_mechanism(
            "hhc_4", counts, workload, epsilon=1.1, repetitions=2, random_state=0
        )
        assert cell.mechanism == "hhc_4"
        assert cell.domain_size == 64
        assert cell.n_users == 50_000
        assert cell.repetitions == 2
        assert cell.mse_mean > 0
        assert cell.scaled_mse == pytest.approx(cell.mse_mean * 1000)
        assert cell.as_dict()["workload"] == workload.name

    def test_evaluate_mechanism_deterministic_given_seed(self, counts, workload):
        first = evaluate_mechanism("haar", counts, workload, 1.0, repetitions=2, random_state=9)
        second = evaluate_mechanism("haar", counts, workload, 1.0, repetitions=2, random_state=9)
        assert first.mse_mean == pytest.approx(second.mse_mean)

    def test_evaluate_mechanism_kwargs_forwarded(self, counts, workload):
        cell = evaluate_mechanism(
            "hhc_4",
            counts,
            workload,
            epsilon=1.0,
            repetitions=1,
            random_state=0,
            mechanism_kwargs={"budget_strategy": "splitting"},
        )
        assert cell.mse_mean > 0

    def test_repetitions_validation(self, counts, workload):
        with pytest.raises(ConfigurationError):
            evaluate_mechanism("haar", counts, workload, 1.0, repetitions=0)

    def test_run_epsilon_grid_shape(self, counts, workload):
        results = run_epsilon_grid(
            ["hhc_4", "haar"], counts, workload, epsilons=[0.5, 1.0], repetitions=1, random_state=0
        )
        assert len(results) == 4
        assert {cell.epsilon for cell in results} == {0.5, 1.0}
        assert {cell.mechanism for cell in results} == {"hhc_4", "haar"}

    def test_run_epsilon_grid_accepts_generators(self, counts, workload):
        # Regression: `len(list(epsilons))` used to exhaust generator inputs
        # before the sweep loops ran, silently returning too few results.
        lazy = run_epsilon_grid(
            (spec for spec in ["hhc_4", "haar"]),
            counts,
            workload,
            epsilons=(eps for eps in [0.5, 1.0]),
            repetitions=1,
            random_state=0,
        )
        eager = run_epsilon_grid(
            ["hhc_4", "haar"], counts, workload, epsilons=[0.5, 1.0], repetitions=1, random_state=0
        )
        assert len(lazy) == len(eager) == 4
        assert [cell.mse_mean for cell in lazy] == [cell.mse_mean for cell in eager]

    def test_workers_validation(self, counts, workload):
        with pytest.raises(ConfigurationError):
            evaluate_mechanism("haar", counts, workload, 1.0, workers=0)
        with pytest.raises(ConfigurationError):
            run_epsilon_grid(
                ["haar"], counts, workload, epsilons=[1.0], workers=0
            )

    def test_error_decreases_with_epsilon(self, counts, workload):
        results = run_epsilon_grid(
            ["hhc_4"], counts, workload, epsilons=[0.2, 1.4], repetitions=3, random_state=1
        )
        by_eps = {cell.epsilon: cell.mse_mean for cell in results}
        assert by_eps[1.4] < by_eps[0.2]


class TestParallelRunner:
    """workers > 1 fans out across processes, bit-identically to serial."""

    @pytest.fixture
    def counts(self):
        return DataConfig().counts(32, 20_000)

    @pytest.fixture
    def workload(self):
        return all_range_queries(32)

    def test_parallel_grid_bit_identical_to_serial(self, counts, workload):
        kwargs = dict(
            counts=counts,
            workload=workload,
            epsilons=[0.5, 1.1],
            repetitions=2,
            random_state=42,
        )
        serial = run_epsilon_grid(["hhc_4", "haar"], workers=1, **kwargs)
        parallel = run_epsilon_grid(["hhc_4", "haar"], workers=4, **kwargs)
        assert serial == parallel  # CellResults compare field-exact

    def test_parallel_evaluate_bit_identical_to_serial(self, counts, workload):
        serial = evaluate_mechanism(
            "hhc_4", counts, workload, 1.0, repetitions=3, random_state=5, workers=1
        )
        parallel = evaluate_mechanism(
            "hhc_4", counts, workload, 1.0, repetitions=3, random_state=5, workers=3
        )
        assert serial == parallel

    def test_parallel_results_ordered_like_serial(self, counts, workload):
        results = run_epsilon_grid(
            ["hhc_4", "haar"],
            counts,
            workload,
            epsilons=[0.5, 1.1],
            repetitions=1,
            random_state=0,
            workers=2,
        )
        layout = [(cell.epsilon, cell.mechanism) for cell in results]
        assert layout == [
            (0.5, "hhc_4"),
            (0.5, "haar"),
            (1.1, "hhc_4"),
            (1.1, "haar"),
        ]


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["xx", 3]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]

    def test_pivot_by_epsilon(self):
        cells = [
            CellResult("m1", 0.5, 64, 100, "w", 0.1, 0.0, 1),
            CellResult("m2", 0.5, 64, 100, "w", 0.2, 0.0, 1),
            CellResult("m1", 1.0, 64, 100, "w", 0.05, 0.0, 1),
        ]
        pivot = pivot_by_epsilon(cells)
        assert set(pivot) == {0.5, 1.0}
        assert set(pivot[0.5]) == {"m1", "m2"}

    def test_render_results_marks_best(self):
        cells = [
            CellResult("m1", 0.5, 64, 100, "w", 0.1, 0.0, 1),
            CellResult("m2", 0.5, 64, 100, "w", 0.2, 0.0, 1),
        ]
        text = render_results(cells)
        assert "100.000*" in text  # m1's scaled MSE marked as the row best
        assert "200.000" in text

    def test_render_empty(self):
        assert render_results([]) == "(no results)"
