"""Unit tests for repro.persist: snapshot round-trips and compatibility gates."""

import numpy as np
import pytest

from repro import persist
from repro.core.factory import mechanism_from_spec
from repro.core.flat import FlatMechanism
from repro.core.hierarchical import HierarchicalHistogramMechanism
from repro.core.wavelet import HaarWaveletMechanism
from repro.exceptions import ConfigurationError
from repro.frequency_oracles.registry import available_oracles, make_oracle
from repro.persist.format import (
    FORMAT_VERSION,
    MAGIC,
    flatten_arrays,
    nest_arrays,
    pack_snapshot,
    unpack_snapshot,
)

DOMAIN = 64
EPSILON = 1.0

MECHANISM_SPECS = [
    "flat_oue",
    "flat_sue",
    "flat_grr",
    "flat_olh",
    "flat_hrr",
    "hh_4",
    "hhc_4",
    "hhc_8_hrr",
    "hhc_4_olh",
    "haar",
    "grid2d_2",
]


@pytest.fixture
def items(rng):
    return rng.integers(0, DOMAIN, size=30_000)


class TestContainerFormat:
    def test_pack_unpack_round_trip(self):
        header = {"kind": "x", "note": "hello"}
        arrays = {"a": np.arange(5), "b/c": np.eye(3)}
        restored_header, restored = unpack_snapshot(pack_snapshot(header, arrays))
        assert restored_header["kind"] == "x"
        assert restored_header["format_version"] == FORMAT_VERSION
        np.testing.assert_array_equal(restored["a"], np.arange(5))
        np.testing.assert_array_equal(restored["b/c"], np.eye(3))

    def test_empty_arrays_allowed(self):
        header, arrays = unpack_snapshot(pack_snapshot({"kind": "x"}, {}))
        assert arrays == {}

    def test_bad_magic_rejected(self):
        with pytest.raises(ConfigurationError):
            unpack_snapshot(b"NOTASNAPSHOT" + b"\x00" * 32)

    def test_truncated_rejected(self):
        data = pack_snapshot({"kind": "x"}, {"a": np.arange(10)})
        with pytest.raises(ConfigurationError):
            unpack_snapshot(data[: len(MAGIC) + 2])
        with pytest.raises(ConfigurationError):
            unpack_snapshot(data[:-10])

    def test_newer_version_rejected(self):
        data = bytearray(pack_snapshot({"kind": "x"}, {}))
        data[len(MAGIC)] = 0xFF  # bump the little-endian version word
        with pytest.raises(ConfigurationError, match="version"):
            unpack_snapshot(bytes(data))

    def test_non_bytes_rejected(self):
        with pytest.raises(ConfigurationError):
            unpack_snapshot("not bytes")

    def test_flatten_nest_inverse(self):
        nested = {"a": {"b": np.arange(3), "c": {"d": np.zeros(2)}}, "e": np.ones(1)}
        flat = flatten_arrays(nested)
        assert set(flat) == {"a/b", "a/c/d", "e"}
        rebuilt = nest_arrays(flat)
        np.testing.assert_array_equal(rebuilt["a"]["c"]["d"], np.zeros(2))

    def test_flatten_rejects_separator_in_keys(self):
        with pytest.raises(ConfigurationError):
            flatten_arrays({"a/b": np.arange(2)})


class TestAccumulatorRoundTrip:
    @pytest.mark.parametrize("oracle_name", sorted(available_oracles()))
    def test_bit_exact_round_trip(self, oracle_name, items, rng):
        oracle = make_oracle(oracle_name, epsilon=EPSILON, domain_size=DOMAIN)
        accumulator = oracle.accumulator().add_items(items, rng)
        data = persist.to_bytes(accumulator)

        self_contained = persist.from_bytes(data)
        templated = persist.from_bytes(data, template=oracle)
        for restored in (self_contained, templated):
            assert restored.n_users == accumulator.n_users
            np.testing.assert_array_equal(restored.estimate(), accumulator.estimate())

    @pytest.mark.parametrize("oracle_name", sorted(available_oracles()))
    def test_restored_accumulator_keeps_accumulating(self, oracle_name, items, rng):
        oracle = make_oracle(oracle_name, epsilon=EPSILON, domain_size=DOMAIN)
        accumulator = oracle.accumulator().add_items(items[:10_000], rng)
        restored = persist.from_bytes(persist.to_bytes(accumulator), template=oracle)
        restored.add_items(items[10_000:], rng)
        assert restored.n_users == items.size
        assert np.all(np.isfinite(restored.estimate()))

    def test_epsilon_mismatch_rejected(self, items, rng):
        accumulator = make_oracle("oue", epsilon=1.0, domain_size=DOMAIN).accumulator()
        accumulator.add_items(items, rng)
        other = make_oracle("oue", epsilon=2.0, domain_size=DOMAIN)
        with pytest.raises(ConfigurationError, match="incompatible"):
            persist.from_bytes(persist.to_bytes(accumulator), template=other)

    def test_domain_mismatch_rejected(self, items, rng):
        accumulator = make_oracle("oue", epsilon=1.0, domain_size=DOMAIN).accumulator()
        accumulator.add_items(items, rng)
        other = make_oracle("oue", epsilon=1.0, domain_size=2 * DOMAIN)
        with pytest.raises(ConfigurationError, match="incompatible"):
            persist.from_bytes(persist.to_bytes(accumulator), template=other)

    def test_oracle_param_mismatch_rejected(self, items, rng):
        oracle = make_oracle("olh", epsilon=1.0, domain_size=DOMAIN, hash_range=4)
        accumulator = oracle.accumulator().add_items(items, rng)
        other = make_oracle("olh", epsilon=1.0, domain_size=DOMAIN, hash_range=8)
        with pytest.raises(ConfigurationError, match="incompatible"):
            persist.from_bytes(persist.to_bytes(accumulator), template=other)

    def test_state_dict_validates_shapes(self):
        oracle = make_oracle("oue", epsilon=1.0, domain_size=DOMAIN)
        accumulator = oracle.accumulator()
        state = accumulator.state_dict()
        state["ones"] = np.zeros(DOMAIN + 1)
        with pytest.raises(ConfigurationError):
            oracle.accumulator().load_state_dict(state)
        with pytest.raises(ConfigurationError):
            oracle.accumulator().load_state_dict({"bogus": np.zeros(DOMAIN)})


class TestMechanismRoundTrip:
    @pytest.mark.parametrize("spec", MECHANISM_SPECS)
    def test_bit_exact_round_trip(self, spec, items):
        mechanism = mechanism_from_spec(spec, epsilon=EPSILON, domain_size=DOMAIN)
        mechanism.fit_items(items, random_state=7)
        data = persist.to_bytes(mechanism)

        self_contained = persist.from_bytes(data)
        template = mechanism_from_spec(spec, epsilon=EPSILON, domain_size=DOMAIN)
        templated = persist.from_bytes(data, template=template)
        for restored in (self_contained, templated):
            assert restored.n_users == mechanism.n_users
            np.testing.assert_array_equal(
                restored.estimate_frequencies(), mechanism.estimate_frequencies()
            )
            queries = np.array([[0, 10], [5, 40], [0, DOMAIN - 1]])
            np.testing.assert_array_equal(
                restored.answer_ranges(queries), mechanism.answer_ranges(queries)
            )

    @pytest.mark.parametrize("spec", ["flat_oue", "hhc_4", "haar"])
    def test_file_round_trip(self, spec, items, tmp_path):
        mechanism = mechanism_from_spec(spec, epsilon=EPSILON, domain_size=DOMAIN)
        mechanism.fit_items(items, random_state=3)
        path = persist.save(mechanism, tmp_path / "mechanism.snap")
        restored = persist.load(path)
        np.testing.assert_array_equal(
            restored.estimate_frequencies(), mechanism.estimate_frequencies()
        )

    def test_unfitted_round_trip(self):
        mechanism = mechanism_from_spec("hhc_4", epsilon=EPSILON, domain_size=DOMAIN)
        restored = persist.from_bytes(persist.to_bytes(mechanism))
        assert not restored.is_fitted

    def test_restored_mechanism_keeps_collecting(self, items):
        mechanism = mechanism_from_spec("haar", epsilon=EPSILON, domain_size=DOMAIN)
        mechanism.partial_fit(items[:10_000], random_state=1)
        restored = persist.from_bytes(persist.to_bytes(mechanism))
        restored.partial_fit(items[10_000:], random_state=2)
        assert restored.n_users == items.size

    def test_non_default_configuration_survives(self, items):
        mechanism = HierarchicalHistogramMechanism(
            EPSILON,
            DOMAIN,
            branching=4,
            consistency=False,
            budget_strategy="splitting",
            level_probabilities=[0.5, 0.3, 0.2],
        )
        mechanism.fit_items(items, random_state=5)
        restored = persist.from_bytes(persist.to_bytes(mechanism))
        assert restored.budget_strategy == "splitting"
        assert not restored.consistency
        np.testing.assert_allclose(restored.level_probabilities, [0.5, 0.3, 0.2])
        np.testing.assert_array_equal(
            restored.estimate_frequencies(), mechanism.estimate_frequencies()
        )

    @pytest.mark.parametrize(
        "other_spec, epsilon, domain",
        [
            ("hhc_4", 2.0, DOMAIN),        # epsilon mismatch
            ("hhc_4", EPSILON, 2 * DOMAIN),  # domain mismatch
            ("hhc_8", EPSILON, DOMAIN),    # branching mismatch
            ("hh_4", EPSILON, DOMAIN),     # consistency mismatch
            ("hhc_4_hrr", EPSILON, DOMAIN),  # oracle mismatch
        ],
    )
    def test_incompatible_template_rejected(self, other_spec, epsilon, domain, items):
        mechanism = mechanism_from_spec("hhc_4", epsilon=EPSILON, domain_size=DOMAIN)
        mechanism.fit_items(items, random_state=0)
        template = mechanism_from_spec(other_spec, epsilon=epsilon, domain_size=domain)
        with pytest.raises(ConfigurationError, match="incompatible"):
            persist.from_bytes(persist.to_bytes(mechanism), template=template)

    def test_wrong_kind_template_rejected(self, items):
        mechanism = mechanism_from_spec("flat_oue", epsilon=EPSILON, domain_size=DOMAIN)
        mechanism.fit_items(items, random_state=0)
        oracle = make_oracle("oue", epsilon=EPSILON, domain_size=DOMAIN)
        with pytest.raises(ConfigurationError):
            persist.from_bytes(persist.to_bytes(mechanism), template=oracle)

    def test_describe_exposes_header_only(self, items):
        mechanism = mechanism_from_spec("hhc_4", epsilon=EPSILON, domain_size=DOMAIN)
        mechanism.fit_items(items, random_state=0)
        header = persist.describe(persist.to_bytes(mechanism))
        assert header["kind"] == "mechanism"
        assert header["config"]["kind"] == "hierarchical"
        assert header["config"]["epsilon"] == pytest.approx(EPSILON)


class TestMechanismConfig:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: FlatMechanism(EPSILON, DOMAIN, oracle="olh", hash_range=4),
            lambda: HierarchicalHistogramMechanism(
                EPSILON, DOMAIN, branching=8, oracle="hrr", consistency=False
            ),
            lambda: HaarWaveletMechanism(EPSILON, DOMAIN),
        ],
    )
    def test_clone_unfitted_preserves_signature(self, factory):
        mechanism = factory()
        clone = persist.clone_unfitted(mechanism)
        assert clone is not mechanism
        assert not clone.is_fitted
        assert persist.normalize_signature(
            clone._merge_signature()
        ) == persist.normalize_signature(mechanism._merge_signature())

    def test_unknown_config_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            persist.mechanism_from_config({"kind": "quantum"})

    def test_snapshot_of_unsupported_object_rejected(self):
        with pytest.raises(ConfigurationError):
            persist.to_bytes(object())
