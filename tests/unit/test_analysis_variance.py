"""Unit tests for the closed-form variance expressions (Section 4)."""

import math

import pytest

from repro.exceptions import ConfigurationError, InvalidQueryError
from repro.analysis.variance import (
    flat_average_variance,
    flat_range_variance,
    frequency_oracle_variance,
    grid2d_rectangle_variance,
    haar_range_variance,
    hh_average_variance,
    hh_consistent_range_variance,
    hh_range_variance,
    optimal_branching_factor,
    optimal_branching_factor_consistent,
)


class TestOracleVariance:
    def test_formula(self):
        eps, n = 1.1, 100_000
        expected = 4 * math.exp(eps) / (n * (math.exp(eps) - 1) ** 2)
        assert frequency_oracle_variance(eps, n) == pytest.approx(expected)

    def test_decreases_with_users_and_epsilon(self):
        assert frequency_oracle_variance(1.0, 2000) < frequency_oracle_variance(1.0, 1000)
        assert frequency_oracle_variance(2.0, 1000) < frequency_oracle_variance(1.0, 1000)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            frequency_oracle_variance(1.0, 0)


class TestFlatVariance:
    def test_linear_in_range_length(self):
        base = flat_range_variance(1.0, 1000, 1, 1024)
        assert flat_range_variance(1.0, 1000, 100, 1024) == pytest.approx(100 * base)

    def test_average_formula(self):
        # Lemma 4.2: (D + 2) V_F / 3.
        eps, n, domain = 1.0, 1000, 256
        expected = (domain + 2) * frequency_oracle_variance(eps, n) / 3
        assert flat_average_variance(eps, n, domain) == pytest.approx(expected)

    def test_range_length_validation(self):
        with pytest.raises(InvalidQueryError):
            flat_range_variance(1.0, 1000, 0, 64)
        with pytest.raises(InvalidQueryError):
            flat_range_variance(1.0, 1000, 65, 64)


class TestHierarchicalVariance:
    def test_grows_logarithmically_with_range(self):
        short = hh_range_variance(1.0, 10_000, 4, 1 << 16, 4)
        long = hh_range_variance(1.0, 10_000, 1 << 14, 1 << 16, 4)
        assert long < 20 * short  # logarithmic, not linear, growth

    def test_hh_beats_flat_for_long_ranges_on_large_domains(self):
        eps, n, domain = 1.1, 1 << 20, 1 << 16
        r = 1 << 12
        assert hh_range_variance(eps, n, r, domain, 4) < flat_range_variance(eps, n, r, domain)

    def test_consistency_reduces_the_bound(self):
        eps, n, domain, r = 1.0, 100_000, 1 << 16, 1 << 10
        for branching in (2, 4, 8, 16):
            assert hh_consistent_range_variance(
                eps, n, r, domain, branching
            ) < hh_range_variance(eps, n, r, domain, branching)

    def test_average_variance_formula_positive_and_logarithmic(self):
        small = hh_average_variance(1.0, 10_000, 1 << 10, 4)
        large = hh_average_variance(1.0, 10_000, 1 << 20, 4)
        assert 0 < small < large < 10 * small

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            hh_range_variance(1.0, 1000, 4, 64, 1)


class TestHaarVariance:
    def test_formula(self):
        eps, n, domain = 1.0, 50_000, 1 << 10
        expected = 0.5 * (10.0**2) * frequency_oracle_variance(eps, n)
        assert haar_range_variance(eps, n, domain) == pytest.approx(expected)

    def test_independent_of_range_length_by_construction(self):
        # The bound only takes the domain size; this asserts the paper's
        # qualitative point that Haar error does not scale with r.
        assert haar_range_variance(1.0, 1000, 1024) == haar_range_variance(1.0, 1000, 1024)

    def test_close_to_consistent_hh_for_long_ranges(self):
        # Equation (3) vs equation (2) at r = D, B = 8: the paper notes the
        # two coincide (both are log^2(D) V_F / 2).
        eps, n, domain = 1.1, 1 << 20, 1 << 16
        haar = haar_range_variance(eps, n, domain)
        hh8 = hh_consistent_range_variance(eps, n, domain, domain, 8)
        assert haar == pytest.approx(hh8, rel=0.35)


class TestGrid2DVariance:
    def test_formula_at_single_cell(self):
        eps, n, side, b = 1.0, 50_000, 16, 2
        # r = 1: one run level per axis, 2(B-1) nodes each, h = 4 pairs^0.5.
        expected = 4**2 * (2.0 * (b - 1) * 1) ** 2 * frequency_oracle_variance(eps, n)
        assert grid2d_rectangle_variance(eps, n, 1, side, b) == pytest.approx(expected)

    def test_grows_with_rectangle_size(self):
        eps, n, side, b = 1.0, 50_000, 256, 4
        bounds = [grid2d_rectangle_variance(eps, n, r, side, b) for r in (1, 16, 256)]
        assert bounds[0] < bounds[1] < bounds[2]

    def test_quartic_log_growth_vs_1d(self):
        # 2-D pays (h * per-axis-run-count) squared relative to the 1-D
        # per-axis quantities: the log^4 growth Section 6 sketches.
        eps, n, b = 1.0, 1 << 20, 2
        small = grid2d_rectangle_variance(eps, n, 16, 16, b)
        large = grid2d_rectangle_variance(eps, n, 256, 256, b)
        assert large / small == pytest.approx((8 / 4) ** 4, rel=1e-9)

    def test_validation(self):
        with pytest.raises(InvalidQueryError):
            grid2d_rectangle_variance(1.0, 1000, 0, 16, 2)
        with pytest.raises(InvalidQueryError):
            grid2d_rectangle_variance(1.0, 1000, 17, 16, 2)
        with pytest.raises(ConfigurationError):
            grid2d_rectangle_variance(1.0, 1000, 4, 16, 1)


class TestOptimalBranching:
    def test_without_consistency_near_five(self):
        # Section 4.4: the optimum is ~4.922, so B = 4 or 5.
        assert optimal_branching_factor() == pytest.approx(4.922, abs=0.01)

    def test_with_consistency_near_nine(self):
        # Section 4.5: the optimum is ~9.18 once consistency is applied.
        assert optimal_branching_factor_consistent() == pytest.approx(9.18, abs=0.05)

    def test_consistency_increases_optimal_branching(self):
        assert optimal_branching_factor_consistent() > optimal_branching_factor()
