"""Local differential privacy substrate.

This subpackage holds everything that is about the *privacy model* rather
than any particular mechanism:

* :mod:`repro.privacy.budget` — validation and book-keeping of the privacy
  parameter ``epsilon``;
* :mod:`repro.privacy.mechanisms` — the canonical perturbation probabilities
  used by the frequency oracles (binary randomized response, generalized
  randomized response, unary-encoding flip probabilities) together with
  helpers that verify a pair of probabilities actually satisfies
  ``epsilon``-LDP;
* :mod:`repro.privacy.randomness` — pseudo-random number generator plumbing
  so that every experiment is reproducible from a single seed.
"""

from repro.privacy.budget import PrivacyBudget, exp_epsilon, validate_epsilon
from repro.privacy.mechanisms import (
    PerturbationProbabilities,
    binary_rr_probability,
    grr_probabilities,
    ldp_guarantee_epsilon,
    oue_probabilities,
    verify_ldp,
)
from repro.privacy.randomness import RandomState, as_generator, spawn_generators

__all__ = [
    "PrivacyBudget",
    "exp_epsilon",
    "validate_epsilon",
    "PerturbationProbabilities",
    "binary_rr_probability",
    "grr_probabilities",
    "oue_probabilities",
    "ldp_guarantee_epsilon",
    "verify_ldp",
    "RandomState",
    "as_generator",
    "spawn_generators",
]
