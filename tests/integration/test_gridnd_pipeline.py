"""End-to-end 3-D pipeline: sharded ingest, persist round-trip, box queries.

The N-d acceptance demo from PR 9: a ``d = 3`` population flows through
``ShardedCollector.submit_points`` (now d-column aware), the reduced
mechanism survives a snapshot round-trip bit-for-bit, box queries track
the exact answers, and the planner's chosen configuration is the one the
session actually runs when asked for an ``"auto"`` mechanism.
"""

import asyncio

import numpy as np
import pytest

from repro.core.multidim import HierarchicalGridND
from repro.core.session import GridNDSession
from repro.data.synthetic import clustered_grid_points
from repro.data.workloads import BoxWorkload, evaluate_exact_boxes, random_boxes
from repro.exceptions import ConfigurationError
from repro.persist import snapshots
from repro.planner import plan
from repro.service import IngestionService
from repro.streaming import ShardedCollector

SIDE = 8
DIMS = 3
EPSILON = 1.4
N_USERS = 24_000
N_BATCHES = 6


@pytest.fixture(scope="module")
def points():
    return clustered_grid_points(SIDE, N_USERS, random_state=71, dims=DIMS)


@pytest.fixture(scope="module")
def boxes():
    return random_boxes(SIDE, 40, dims=DIMS, random_state=72)


@pytest.fixture(scope="module")
def truth(points, boxes):
    counts = np.zeros((SIDE,) * DIMS)
    np.add.at(counts, tuple(points.T), 1)
    return evaluate_exact_boxes(counts, boxes, dims=DIMS)


def _collector(n_shards: int, seed: int = 73) -> ShardedCollector:
    return ShardedCollector(
        f"grid{DIMS}d_2",
        epsilon=EPSILON,
        domain_size=SIDE,
        n_shards=n_shards,
        random_state=seed,
    )


class TestShardedIngest:
    @pytest.mark.parametrize("n_shards", [1, 3])
    def test_ingest_reduce_query(self, points, boxes, truth, n_shards):
        collector = _collector(n_shards)
        for batch in np.array_split(points, N_BATCHES):
            collector.submit_points(batch)
        reduced = collector.reduce()
        assert isinstance(reduced, HierarchicalGridND)
        assert reduced.dims == DIMS
        assert reduced.n_users == N_USERS

        estimates = reduced.answer_boxes(boxes)
        mse = float(np.mean((estimates - truth) ** 2))
        assert mse < float(reduced.theoretical_variance_bound(SIDE))
        full = reduced.answer_box(((0, SIDE - 1),) * DIMS)
        assert full == pytest.approx(1.0, abs=0.25)

    def test_submit_points_validates_column_count(self, points):
        collector = _collector(2)
        with pytest.raises(Exception):
            collector.submit_points(points[:, :2])  # d-1 columns
        assert collector.n_batches == 0

    def test_async_ingestion_service(self, points, boxes, truth):
        async def run():
            collector = _collector(2, seed=74)
            async with IngestionService(collector, queue_size=4) as service:
                for batch in np.array_split(points, N_BATCHES):
                    await service.submit_points(batch)
                await service.join()
            return collector.reduce()

        reduced = asyncio.run(run())
        assert reduced.n_users == N_USERS
        mse = float(np.mean((reduced.answer_boxes(boxes) - truth) ** 2))
        assert mse < float(reduced.theoretical_variance_bound(SIDE))


class TestPersistRoundTrip:
    def test_reduced_mechanism_round_trips_bit_exact(self, points, boxes):
        collector = _collector(3, seed=75)
        for batch in np.array_split(points, N_BATCHES):
            collector.submit_points(batch)
        reduced = collector.reduce()

        restored = snapshots.from_bytes(snapshots.to_bytes(reduced))
        assert isinstance(restored, HierarchicalGridND)
        assert restored.dims == DIMS
        assert np.array_equal(restored.answer_boxes(boxes), reduced.answer_boxes(boxes))
        assert np.array_equal(restored.estimate_heatmap(), reduced.estimate_heatmap())

    def test_collector_checkpoint_mid_stream(self, points, boxes, tmp_path):
        batches = np.array_split(points, N_BATCHES)
        half = N_BATCHES // 2

        uninterrupted = _collector(2, seed=76)
        for batch in batches:
            uninterrupted.submit_points(batch)
        expected = uninterrupted.reduce()

        crashed = _collector(2, seed=76)
        for batch in batches[:half]:
            crashed.submit_points(batch)
        path = crashed.checkpoint(tmp_path / "grid3d.snap")
        del crashed

        resumed = ShardedCollector.restore(path)
        for batch in batches[half:]:
            resumed.submit_points(batch)
        actual = resumed.reduce()

        assert np.array_equal(
            expected.answer_boxes(boxes), actual.answer_boxes(boxes)
        )


class TestGridNDSession:
    def test_collect_save_load_query(self, points, boxes, tmp_path):
        session = GridNDSession(EPSILON, SIDE, mechanism=f"grid{DIMS}d_2")
        session.collect_points(points, random_state=77)
        assert session.dims == DIMS
        assert session.n_users == N_USERS
        full = session.box_query(((0, SIDE - 1),) * DIMS)
        assert full == pytest.approx(1.0, abs=0.25)

        path = session.save(tmp_path / "grid3d-session.snap")
        loaded = GridNDSession.load(path)
        assert isinstance(loaded, GridNDSession)
        assert np.array_equal(loaded.box_queries(boxes), session.box_queries(boxes))
        assert np.array_equal(loaded.heatmap(), session.heatmap())

    def test_rejects_non_grid_mechanism(self):
        with pytest.raises(ConfigurationError):
            GridNDSession(EPSILON, 64, mechanism="hhc_4")


class TestPlannerDrivenPipeline:
    def test_planned_mechanism_answers_the_planned_workload(self, points, boxes, truth):
        workload = BoxWorkload(SIDE, DIMS, boxes, name="pipeline-boxes")
        chosen = plan(
            workload, n_users=N_USERS, epsilon=EPSILON, branchings=(2, 4)
        )
        mechanism = chosen.mechanism()
        assert isinstance(mechanism, HierarchicalGridND)
        assert mechanism.dims == DIMS

        mechanism.fit_points(points, np.random.default_rng(78))
        mse = float(np.mean((mechanism.answer_boxes(boxes) - truth) ** 2))
        assert mse < chosen.predicted_variance
        assert mse < float(mechanism.theoretical_variance_bound(SIDE))
