"""Multi-dimensional extension (Section 6 of the paper).

The hierarchical decomposition generalises to ``d`` dimensions by taking the
product of per-axis B-adic decompositions: any axis-aligned box splits into
``O(log_B^d D)`` "B-adic boxes", and a user's point lies in exactly one box
per *tuple* of axis levels.  The protocol therefore becomes:

* each user samples a level tuple ``(l_1, ..., l_d)`` uniformly at random;
* she forms the one-hot vector over the ``B^{l_1} * ... * B^{l_d}`` grid
  cells of that resolution and perturbs it with a frequency oracle;
* the aggregator reconstructs one fraction estimate per cell of every level
  tuple and answers a box query by summing the cells of its product
  decomposition (inclusion–exclusion over the ``2^d`` corners of each
  run product, evaluated on d-dimensional prefix sums).

The variance of a box query grows as ``log^{2d}_B D``, matching the
discussion in the paper; Section 6 notes that for higher dimensions coarse
gridding becomes preferable — :mod:`repro.planner` turns exactly that
trade-off (mechanism family x branching factor x oracle) into a runtime
decision from the closed-form bounds.

Since every level tuple's aggregation is an
:class:`~repro.frequency_oracles.accumulators.OracleAccumulator` over the
flattened cell domain, the mechanism is a full
:class:`~repro.core.base.RangeQueryMechanism` citizen: incremental
collection (:meth:`~HierarchicalGridND.partial_fit` /
:meth:`~HierarchicalGridND.partial_fit_points`), shard combination
(:meth:`~HierarchicalGridND.merge_from`) and bit-exact snapshots
(:meth:`~HierarchicalGridND.state_dict`, :mod:`repro.persist`) all work,
so the sharded / async / durable pipeline serves box workloads too.
Internally the base class sees the *flattened* row-major domain of size
``D^d`` — a point ``(x_1, ..., x_d)`` is the item
``x_1 * D^{d-1} + ... + x_d`` — while the d-dimensional surface
(:meth:`~HierarchicalGridND.fit_points`,
:meth:`~HierarchicalGridND.answer_box`,
:meth:`~HierarchicalGridND.estimate_heatmap`) speaks coordinates.

:class:`HierarchicalGrid2D` is the ``d = 2`` specialization — the original
two-dimensional mechanism, re-expressed on top of the generic machinery
with bit-identical answers, names, persist signatures and snapshot layout.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.base import RangeQueryMechanism
from repro.core.cache import MISS
from repro.exceptions import (
    InvalidDomainError,
    InvalidQueryError,
)
from repro.frequency_oracles.accumulators import OracleAccumulator
from repro.frequency_oracles.registry import make_oracle
from repro.hierarchy.decomposition import (
    NodeRun,
    batched_axis_runs,
    decompose_box_to_runs,
    decompose_to_runs,
)
from repro.hierarchy.tree import DomainTree
from repro.privacy.randomness import RandomState

__all__ = ["HierarchicalGrid2D", "HierarchicalGridND", "validate_points"]

#: A level tuple ``(l_1, ..., l_d)`` indexing one resolution grid.
LevelTuple = Tuple[int, ...]
#: Backwards-compatible alias for the d = 2 case.
LevelPair = Tuple[int, int]

#: Largest flattened domain the row-major item encoding can address without
#: risking int64 overflow in the flatten / unflatten arithmetic.
_MAX_FLAT_DOMAIN = 1 << 62


def validate_points(points: np.ndarray, dims: int, side: int) -> np.ndarray:
    """Validate an ``(n, dims)`` integer point array (shared point gate).

    The single authoritative input check of every point-collection path —
    :meth:`HierarchicalGridND.flatten_points` and through it
    :class:`~repro.streaming.ShardedCollector.submit_points`,
    :class:`~repro.service.IngestionService` and the HTTP ``/v1/points``
    endpoint.  Float coordinates are rejected outright — silently truncating
    ``[[0.9, 0.2]]`` to ``[[0, 0]]`` would corrupt the collected density
    without any error (the same hazard
    :meth:`~repro.core.base.RangeQueryMechanism.fit_items` guards against in
    one dimension); NaNs are caught by the same dtype gate, and
    out-of-bounds coordinates are reported against the ``[0, D)^d`` cube.
    Returns the points as ``int64`` (no copy when already integral).
    """
    points = np.asarray(points)
    if points.ndim != 2 or points.shape[1] != dims:
        raise InvalidQueryError(
            f"points must be an (n, {dims}) array of grid coordinates"
        )
    if (
        points.size
        and not np.issubdtype(points.dtype, np.integer)
        and points.dtype != np.bool_  # bools cast to 0/1 without loss
    ):
        raise InvalidQueryError(
            f"points must have an integer dtype, got {points.dtype}; "
            "round or cast explicitly before collection"
        )
    if points.size and (points.min() < 0 or points.max() >= side):
        raise InvalidQueryError(f"points must lie in [0, {side})^{dims}")
    return points.astype(np.int64, copy=False)


class HierarchicalGridND(RangeQueryMechanism):
    """LDP box-query mechanism over a ``d``-dimensional grid domain.

    Parameters
    ----------
    epsilon:
        Per-user privacy budget.
    domain_size:
        Per-axis side length ``D`` of the ``[D]^d`` grid.
    dims:
        Number of axes ``d`` (default 2).
    branching:
        Per-axis fan-out ``B`` of the hierarchical decomposition.
    oracle:
        Frequency oracle used for every level tuple (default ``"oue"``).

    Notes
    -----
    As a :class:`~repro.core.base.RangeQueryMechanism` the instance also
    answers *flattened* row-major queries (``fit_items`` /
    ``answer_range`` over the domain ``[0, D^d)``), which is what the
    sharded and streaming layers route through; the d-dimensional methods
    are thin coordinate adapters over the same accumulated state.
    """

    def __init__(
        self,
        epsilon: float,
        domain_size: int,
        dims: int = 2,
        branching: int = 2,
        oracle: str = "oue",
        name: Optional[str] = None,
        **oracle_kwargs,
    ) -> None:
        if not isinstance(domain_size, (int, np.integer)) or domain_size < 2:
            raise InvalidDomainError(
                f"domain side length must be an integer >= 2, got {domain_size!r}"
            )
        if not isinstance(dims, (int, np.integer)) or dims < 1:
            raise InvalidDomainError(
                f"dims must be a positive integer, got {dims!r}"
            )
        side = int(domain_size)
        dims = int(dims)
        if side**dims > _MAX_FLAT_DOMAIN:
            raise InvalidDomainError(
                f"flattened domain {side}^{dims} exceeds the int64-addressable "
                "item space; reduce the side length or the dimensionality"
            )
        default_name = f"Grid{dims}D{str(oracle).upper()}_B{branching}"
        # The base class owns the flattened row-major domain of D^d cells.
        super().__init__(epsilon, side**dims, name=name or default_name)
        self._side = side
        self._dims = dims
        self._tree = DomainTree(side, branching)
        self._oracle_name = str(oracle)
        self._oracle_kwargs = dict(oracle_kwargs)
        # itertools.product enumerates the first axis slowest — for d = 2
        # this is exactly the historical `for lx: for ly:` pair order, which
        # every random stream below depends on.
        self._tuples: List[LevelTuple] = list(
            itertools.product(self._tree.levels, repeat=dims)
        )
        self._oracles = {
            levels: make_oracle(
                self._oracle_name,
                epsilon=self.epsilon,
                domain_size=self._cells_at(levels),
                **self._oracle_kwargs,
            )
            for levels in self._tuples
        }
        self._accumulators: Optional[Dict[LevelTuple, OracleAccumulator]] = None
        self._tuple_user_counts: Optional[np.ndarray] = None
        self._estimates: Optional[Dict[LevelTuple, np.ndarray]] = None
        self._tuple_prefix: Optional[Dict[LevelTuple, np.ndarray]] = None

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def _cells_at(self, levels: LevelTuple) -> int:
        """Number of grid cells of the resolution grid at a level tuple."""
        cells = 1
        for level in levels:
            cells *= self._tree.nodes_at_level(level)
        return cells

    @property
    def domain_size(self) -> int:
        """Per-axis side length ``D`` of the grid (the flattened item domain
        is ``D^d``, see :attr:`flat_domain_size`)."""
        return self._side

    @property
    def flat_domain_size(self) -> int:
        """Number of grid cells ``D^d`` — the row-major item domain the
        base-class collection API (``fit_items`` etc.) operates on."""
        return self._domain_size

    @property
    def dims(self) -> int:
        """Number of axes ``d``."""
        return self._dims

    @property
    def tree(self) -> DomainTree:
        """The per-axis domain-tree geometry (shared by every axis)."""
        return self._tree

    @property
    def branching(self) -> int:
        return self._tree.branching

    @property
    def height(self) -> int:
        """Per-axis tree height ``h``."""
        return self._tree.height

    @property
    def level_tuples(self) -> List[LevelTuple]:
        """The ``h^d`` level tuples ``(l_1, ..., l_d)``, one resolution grid
        each."""
        return list(self._tuples)

    @property
    def tuple_user_counts(self) -> Optional[np.ndarray]:
        """Users that reported each level tuple so far (``None`` unfitted)."""
        return (
            None if self._tuple_user_counts is None else self._tuple_user_counts.copy()
        )

    def tuple_estimates(self) -> Dict[LevelTuple, np.ndarray]:
        """Per-level-tuple cell estimates as d-dimensional grids."""
        self._require_fitted()
        return {levels: grid.copy() for levels, grid in self._estimates.items()}

    # ------------------------------------------------------------------
    # Point validation / flattening
    # ------------------------------------------------------------------
    def flatten_points(self, points: np.ndarray) -> np.ndarray:
        """Validate an ``(n, d)`` integer point array and flatten it.

        Returns the row-major item indices accepted by the base-class
        collection API (and therefore by
        :class:`~repro.streaming.ShardedCollector` /
        :class:`~repro.service.IngestionService`); validation lives in the
        shared :func:`validate_points` gate.
        """
        points = validate_points(points, self._dims, self._side)
        flat = points[:, 0]
        for axis in range(1, self._dims):
            flat = flat * self._side + points[:, axis]
        return flat

    def _split_coordinates(self, items: np.ndarray) -> List[np.ndarray]:
        """Row-major items back to per-axis coordinate arrays."""
        coordinates: List[np.ndarray] = []
        remainder = items
        for axis in range(self._dims - 1):
            stride = self._side ** (self._dims - 1 - axis)
            coordinate = remainder // stride
            coordinates.append(coordinate)
            remainder = remainder - coordinate * stride
        coordinates.append(remainder)
        return coordinates

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def fit_points(
        self,
        points: np.ndarray,
        random_state: RandomState = None,
        mode: str = "aggregate",
    ) -> "HierarchicalGridND":
        """Collect a population of d-dimensional points (one-shot).

        Each user is assigned one level tuple uniformly at random; her cell
        index at that resolution is perturbed with the configured oracle.
        ``mode="aggregate"`` (default) samples the aggregator's view
        directly; ``mode="per_user"`` runs the real local protocol per user.
        """
        return self.fit_items(
            self.flatten_points(points), random_state=random_state, mode=mode
        )

    def partial_fit_points(
        self,
        points: np.ndarray,
        random_state: RandomState = None,
        mode: str = "aggregate",
    ) -> "HierarchicalGridND":
        """Collect one additional batch of points incrementally.

        The d-dimensional counterpart of
        :meth:`~repro.core.base.RangeQueryMechanism.partial_fit`: batches
        accumulate on top of everything collected so far, and each user must
        appear in exactly one batch overall.
        """
        return self.partial_fit(
            self.flatten_points(points), random_state=random_state, mode=mode
        )

    def _reset_accumulators(self) -> None:
        self._accumulators = {
            levels: self._oracles[levels].accumulator() for levels in self._tuples
        }
        self._tuple_user_counts = np.zeros(len(self._tuples), dtype=np.int64)

    def _collect(
        self,
        items: Optional[np.ndarray],
        counts: np.ndarray,
        rng: np.random.Generator,
        mode: str,
    ) -> None:
        self._reset_accumulators()
        self._accumulate_batch(items, counts, rng, mode)
        self._mark_dirty()

    def _partial_collect(
        self,
        items: np.ndarray,
        counts: np.ndarray,
        rng: np.random.Generator,
        mode: str,
    ) -> None:
        if self._accumulators is None:
            self._reset_accumulators()
        self._accumulate_batch(items, counts, rng, mode)

    def _accumulate_batch(
        self,
        items: Optional[np.ndarray],
        counts: np.ndarray,
        rng: np.random.Generator,
        mode: str,
    ) -> None:
        if mode == "per_user":
            self._accumulate_per_user(items, rng)
        else:
            self._accumulate_aggregate(counts, rng)

    def _cell_index(
        self,
        levels: LevelTuple,
        axis_nodes: List[Dict[int, np.ndarray]],
        mask: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Flattened cell indices of the resolution grid at a level tuple.

        ``axis_nodes[axis][level]`` caches the per-axis node indices of the
        whole batch; ``mask`` (when given) restricts to the users assigned
        to this tuple.
        """
        nodes = axis_nodes[0][levels[0]]
        cells = nodes[mask] if mask is not None else nodes
        for axis in range(1, self._dims):
            nodes = axis_nodes[axis][levels[axis]]
            part = nodes[mask] if mask is not None else nodes
            cells = cells * self._tree.nodes_at_level(levels[axis]) + part
        return cells

    def _accumulate_per_user(
        self, items: np.ndarray, rng: np.random.Generator
    ) -> None:
        """Each user samples one level tuple and runs the real local protocol.

        Only tuples that actually received users are visited (they are the
        only ones that consume protocol randomness, so the skip changes no
        random stream), and per-axis node indices are computed once per
        active axis level rather than once per tuple — a tiny streaming
        batch costs O(active tuples), not O(h^d) mask scans.
        """
        n_tuples = len(self._tuples)
        assignments = rng.integers(0, n_tuples, size=items.shape[0])
        batch_tuple_counts = np.bincount(assignments, minlength=n_tuples)
        self._tuple_user_counts += batch_tuple_counts
        coordinates = self._split_coordinates(items)
        axis_nodes: List[Dict[int, np.ndarray]] = [{} for _ in range(self._dims)]
        for tuple_index in np.flatnonzero(batch_tuple_counts):
            levels = self._tuples[tuple_index]
            for axis, level in enumerate(levels):
                if level not in axis_nodes[axis]:
                    axis_nodes[axis][level] = self._tree.nodes_of_items(
                        level, coordinates[axis]
                    )
            mask = assignments == tuple_index
            cells = self._cell_index(levels, axis_nodes, mask)
            oracle = self._oracles[levels]
            self._accumulators[levels].add(oracle.encode_batch(cells, rng))

    def _accumulate_aggregate(
        self, counts: np.ndarray, rng: np.random.Generator
    ) -> None:
        """Aggregate-mode collection: partition counts across tuples exactly.

        Each cell's count is split across the ``h^d`` level tuples with a
        multinomial (realised as sequential binomial thinning), the exact
        distribution of how tuple sampling partitions the population;
        multinomial splits of separate batches add up to the split of the
        union, which is what makes this path incremental.  Each tuple's cell
        counts then drive the oracle accumulator's simulated-aggregate path.

        The thinning and the per-tuple cell histograms operate on the
        batch's *support* (cells with non-zero count) only — a small
        streaming batch costs O(nnz · h^d) entries instead of a padded
        ``(B^h)^d`` reshape and block-sum per tuple, leaving the per-tuple
        noise sampling inside ``add_counts`` as the only full-grid work.
        """
        n_tuples = len(self._tuples)
        support = np.flatnonzero(counts)
        remaining = counts[support].astype(np.int64)  # fancy indexing copies
        support_coordinates = self._split_coordinates(support)
        axis_nodes: List[Dict[int, np.ndarray]] = [{} for _ in range(self._dims)]
        remaining_probability = 1.0
        probability = 1.0 / n_tuples
        for tuple_index, levels in enumerate(self._tuples):
            if tuple_index == n_tuples - 1:
                tuple_counts = remaining
            else:
                share = 0.0 if remaining_probability <= 0 else min(
                    1.0, probability / remaining_probability
                )
                tuple_counts = rng.binomial(remaining, share)
                remaining = remaining - tuple_counts
                remaining_probability -= probability
            batch_users = int(tuple_counts.sum())
            self._tuple_user_counts[tuple_index] += batch_users
            if batch_users == 0:
                continue
            for axis, level in enumerate(levels):
                if level not in axis_nodes[axis]:
                    axis_nodes[axis][level] = self._tree.nodes_of_items(
                        level, support_coordinates[axis]
                    )
            node_counts = np.bincount(
                self._cell_index(levels, axis_nodes),
                weights=tuple_counts,
                minlength=self._cells_at(levels),
            ).astype(np.int64)
            self._accumulators[levels].add_counts(node_counts, rng)

    # ------------------------------------------------------------------
    # Merging / persistence
    # ------------------------------------------------------------------
    def _merge_state(self, other: "HierarchicalGridND") -> None:
        if self._accumulators is None:
            self._reset_accumulators()
        for levels in self._tuples:
            self._accumulators[levels].merge(other._accumulators[levels])
        self._tuple_user_counts += other._tuple_user_counts

    def _merge_signature(self) -> tuple:
        return super()._merge_signature() + (
            self._side,
            self._dims,
            self._oracle_name,
            self.branching,
            tuple(sorted(self._oracle_kwargs.items())),
        )

    def state_dict(self) -> dict:
        return self._pack_level_state(self._accumulators, self._tuple_user_counts)

    def load_state_dict(self, state: dict) -> "HierarchicalGridND":
        n_users, accumulators, counts = self._unpack_level_state(
            state, self._tuples, lambda levels: self._oracles[levels].accumulator()
        )
        if accumulators is not None:
            self._accumulators = accumulators
            self._tuple_user_counts = counts
            self._mark_dirty()
        else:
            self._accumulators = None
            self._tuple_user_counts = None
            self._estimates = None
            self._tuple_prefix = None
            self._mark_clean()
        self._n_users = n_users
        return self

    def _refresh_estimates(self) -> None:
        estimates: Dict[LevelTuple, np.ndarray] = {}
        prefixes: Dict[LevelTuple, np.ndarray] = {}
        for levels in self._tuples:
            shape = tuple(self._tree.nodes_at_level(level) for level in levels)
            grid = np.asarray(
                self._accumulators[levels].estimate(), dtype=np.float64
            ).reshape(shape)
            estimates[levels] = grid
            prefix = np.zeros(tuple(n + 1 for n in shape))
            inner = np.cumsum(grid, axis=0)
            for axis in range(1, self._dims):
                inner = np.cumsum(inner, axis=axis)
            prefix[(slice(1, None),) * self._dims] = inner
            prefixes[levels] = prefix
        self._estimates = estimates
        self._tuple_prefix = prefixes

    # ------------------------------------------------------------------
    # Query answering
    # ------------------------------------------------------------------
    def answer_box(self, ranges: Sequence[Tuple[int, int]]) -> float:
        """Estimated fraction of users inside an axis-aligned box.

        ``ranges`` holds one inclusive ``[start, end]`` pair per axis.
        """
        self._require_fitted()
        if len(ranges) != self._dims:
            raise InvalidQueryError(
                f"box queries need one (start, end) pair per axis; "
                f"got {len(ranges)} pairs for {self._dims} axes"
            )
        try:
            key = ("box", tuple((int(a), int(b)) for a, b in ranges))
        except (TypeError, ValueError):
            # Unkeyable bounds bypass the cache; the decomposition owns
            # the precise validation error.
            return self._sum_runs(decompose_box_to_runs(self._tree, ranges))
        cached = self._answer_cache.get(self._ingest_generation, key)
        if cached is not MISS:
            return cached
        value = self._sum_runs(decompose_box_to_runs(self._tree, ranges))
        self._answer_cache.put(self._ingest_generation, key, value)
        return value

    def answer_boxes(self, queries: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`answer_box` over ``(n, 2d)`` rows holding the
        per-axis inclusive bounds ``(a_1, b_1, ..., a_d, b_d)``.

        All queries are decomposed together per axis
        (:func:`~repro.hierarchy.decomposition.batched_axis_runs`); each
        level tuple then contributes through fancy-indexed ``2^d``-corner
        inclusion–exclusion gathers from its d-dimensional prefix-sum grid,
        so a workload of ``n`` boxes costs ``O(h^d)`` numpy passes over
        length-``n`` arrays instead of ``n`` Python-level run products.
        """
        self._require_fitted()
        queries = np.asarray(queries, dtype=np.int64)
        if queries.ndim != 2 or queries.shape[1] != 2 * self._dims:
            raise InvalidQueryError(
                f"box queries must be an (n, {2 * self._dims}) array of "
                "per-axis (start, end) pairs"
            )
        if queries.shape[0] == 0:
            return np.zeros(0, dtype=np.float64)
        key = ("boxes", queries.shape[0], queries.tobytes())
        cached = self._answer_cache.get(self._ingest_generation, key)
        if cached is not MISS:
            return cached
        starts = queries[:, 0::2]
        ends = queries[:, 1::2]
        if (
            queries.min() < 0
            or ends.max() >= self._side
            or np.any(starts > ends)
        ):
            # Fall back to the per-query path for its precise errors.
            return np.array(
                [
                    self.answer_box(
                        [
                            (int(row[2 * axis]), int(row[2 * axis + 1]))
                            for axis in range(self._dims)
                        ]
                    )
                    for row in queries
                ]
            )
        axis_runs = [
            batched_axis_runs(self._tree, queries[:, 2 * axis], queries[:, 2 * axis + 1])
            for axis in range(self._dims)
        ]
        answers = np.zeros(queries.shape[0], dtype=np.float64)
        for levels in self._tuples:
            prefix = self._tuple_prefix[levels]
            slot_lists = [axis_runs[axis][levels[axis]] for axis in range(self._dims)]
            for combo in itertools.product(*slot_lists):
                # combo[axis] = (first, last_exclusive) index arrays; empty
                # run slots (first == last) cancel to exactly 0.  Corner
                # order and float evaluation order match the historical 2-D
                # expression A - B - C + D, so d = 2 stays bit-identical.
                value = prefix[tuple(slot[1] for slot in combo)]
                for corner in range(1, 1 << self._dims):
                    index = tuple(
                        combo[axis][0] if (corner >> axis) & 1 else combo[axis][1]
                        for axis in range(self._dims)
                    )
                    if bin(corner).count("1") % 2:
                        value = value - prefix[index]
                    else:
                        value = value + prefix[index]
                answers += value
        self._answer_cache.put(self._ingest_generation, key, answers)
        return answers

    def _sum_runs(self, axis_runs: Sequence[List[NodeRun]]) -> float:
        """Sum a product of per-axis run decompositions via 2^d corners."""
        answer = 0.0
        for combo in itertools.product(*axis_runs):
            prefix = self._tuple_prefix[tuple(run.level for run in combo)]
            value = prefix[tuple(run.last + 1 for run in combo)]
            for corner in range(1, 1 << self._dims):
                index = tuple(
                    run.first if (corner >> axis) & 1 else run.last + 1
                    for axis, run in enumerate(combo)
                )
                if bin(corner).count("1") % 2:
                    value = value - prefix[index]
                else:
                    value = value + prefix[index]
            answer += value
        return float(answer)

    def _flat_range_boxes(
        self, start: int, end: int, dims: int
    ) -> List[List[Tuple[int, int]]]:
        """Decompose a flat row-major range into axis-aligned boxes.

        The d-dimensional generalisation of "partial first row, full middle
        rows, partial last row": the leading coordinate splits the range
        into a partial first slab, a partial last slab and full middle
        slabs, with the partial slabs recursing into ``d - 1`` dimensions.
        At most ``2d - 1`` boxes result.
        """
        if dims == 1:
            return [[(start, end)]]
        stride = self._side ** (dims - 1)
        first, first_rem = divmod(start, stride)
        last, last_rem = divmod(end, stride)
        if first == last:
            return [
                [(first, first)] + tail
                for tail in self._flat_range_boxes(first_rem, last_rem, dims - 1)
            ]
        boxes = [
            [(first, first)] + tail
            for tail in self._flat_range_boxes(first_rem, stride - 1, dims - 1)
        ]
        boxes += [
            [(last, last)] + tail
            for tail in self._flat_range_boxes(0, last_rem, dims - 1)
        ]
        if last > first + 1:
            boxes.append(
                [(first + 1, last - 1)] + [(0, self._side - 1)] * (dims - 1)
            )
        return boxes

    def _answer_range(self, start: int, end: int) -> float:
        """A flattened row-major range is a union of at most ``2d - 1``
        axis-aligned boxes (partial first slab, full middle, partial last
        slab, recursively per axis)."""
        answer = 0.0
        for box in self._flat_range_boxes(start, end, self._dims):
            answer += self._sum_runs(decompose_box_to_runs(self._tree, box))
        return answer

    def estimate_heatmap(self) -> np.ndarray:
        """Leaf-resolution estimate of the d-dimensional density
        (a ``D x ... x D`` grid)."""
        self._require_fitted()
        leaves = self._estimates[(self._tree.height,) * self._dims]
        return leaves[(slice(None, self._side),) * self._dims].copy()

    def estimate_frequencies(self) -> np.ndarray:
        """Flattened row-major leaf estimates (matches single-cell ranges)."""
        return self.estimate_heatmap().reshape(-1)

    def theoretical_variance_bound(self, per_axis_length: int) -> float:
        """Box-variance bound from the product decomposition.

        An ``r^d`` box decomposes into at most ``2(B - 1)`` runs per axis
        level over ``alpha = min(h, ceil(log_B r) + 1)`` levels per axis,
        so at most ``(2(B - 1) alpha)^d`` cells are summed; each cell
        estimate carries variance ``h^d V_F`` because level-tuple sampling
        dilutes the population across ``h^d`` tuples.  Section 6 only
        sketches the multi-dimensional analysis; this is the 1-D eq. (1)
        argument applied per axis.
        """
        self._require_fitted()
        if (
            not isinstance(per_axis_length, (int, np.integer))
            or not 1 <= per_axis_length <= self._side
        ):
            raise InvalidQueryError("per_axis_length outside the domain")
        from repro.analysis.variance import grid_nd_box_variance

        return grid_nd_box_variance(
            epsilon=self.epsilon,
            n_users=int(self._n_users),
            per_axis_length=int(per_axis_length),
            domain_size=self._side,
            branching=self.branching,
            dims=self._dims,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(epsilon={self.epsilon:.4g}, "
            f"domain_size={self._side}, dims={self._dims}, "
            f"branching={self.branching}, fitted={self.is_fitted})"
        )


class HierarchicalGrid2D(HierarchicalGridND):
    """LDP rectangle-query mechanism over a two-dimensional grid domain.

    The ``d = 2`` specialization of :class:`HierarchicalGridND`: identical
    protocol, answers, snapshot layout and random streams (the generic
    machinery preserves the historical level-pair enumeration and noise
    order exactly), plus the original rectangle-flavoured surface —
    :meth:`answer_rectangle` / :meth:`answer_rectangles`,
    :attr:`level_pairs` and friends — and the original persist identity
    (``grid2d`` config kind, unchanged merge signature).
    """

    def __init__(
        self,
        epsilon: float,
        domain_size: int,
        branching: int = 2,
        oracle: str = "oue",
        name: Optional[str] = None,
        **oracle_kwargs,
    ) -> None:
        super().__init__(
            epsilon,
            domain_size,
            dims=2,
            branching=branching,
            oracle=oracle,
            name=name,
            **oracle_kwargs,
        )

    # ------------------------------------------------------------------
    # Historical 2-D surface
    # ------------------------------------------------------------------
    @property
    def level_pairs(self) -> List[LevelPair]:
        """The ``h^2`` level pairs ``(l_x, l_y)``, one resolution grid each."""
        return self.level_tuples

    @property
    def pair_user_counts(self) -> Optional[np.ndarray]:
        """Users that reported each level pair so far (``None`` unfitted)."""
        return self.tuple_user_counts

    def pair_estimates(self) -> Dict[LevelPair, np.ndarray]:
        """Per-level-pair cell estimates as ``(n_x, n_y)`` grids."""
        return self.tuple_estimates()

    def answer_rectangle(
        self, x_range: Tuple[int, int], y_range: Tuple[int, int]
    ) -> float:
        """Estimated fraction of users inside an axis-aligned rectangle.

        Both ranges are inclusive ``[start, end]`` pairs.
        """
        self._require_fitted()
        key = ("rect", int(x_range[0]), int(x_range[1]), int(y_range[0]), int(y_range[1]))
        cached = self._answer_cache.get(self._ingest_generation, key)
        if cached is not MISS:
            return cached
        x_runs = decompose_to_runs(self._tree, int(x_range[0]), int(x_range[1]))
        y_runs = decompose_to_runs(self._tree, int(y_range[0]), int(y_range[1]))
        value = self._sum_runs([x_runs, y_runs])
        self._answer_cache.put(self._ingest_generation, key, value)
        return value

    def answer_rectangles(self, queries: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`answer_rectangle` over ``(n, 4)`` rows
        ``(x_start, x_end, y_start, y_end)`` — :meth:`answer_boxes` with the
        historical argument validation."""
        queries = np.asarray(queries, dtype=np.int64)
        if queries.ndim != 2 or queries.shape[1] != 4:
            raise InvalidQueryError(
                "rectangle queries must be an (n, 4) array of "
                "(x_start, x_end, y_start, y_end) rows"
            )
        return self.answer_boxes(queries)

    def _merge_signature(self) -> tuple:
        # Kept verbatim from before the ND refactor (no dims component) so
        # pre-existing grid2d snapshots and checkpoints stay compatible.
        return RangeQueryMechanism._merge_signature(self) + (
            self._side,
            self._oracle_name,
            self.branching,
            tuple(sorted(self._oracle_kwargs.items())),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HierarchicalGrid2D(epsilon={self.epsilon:.4g}, domain_size={self._side}, "
            f"branching={self.branching}, fitted={self.is_fitted})"
        )
