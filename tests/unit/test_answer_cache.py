"""Unit tests for the generation-keyed answer cache (repro.core.cache).

Covers the cache data structure itself, the read-surface hooks every
mechanism family gained, and the architectural guard that keeps the cache
out of write paths (the LDP-R003 discipline: ``partial_fit`` /
``merge_from`` / ``fit_*`` / ``load_state_dict`` bodies never touch
``_answer_cache`` — invalidation happens by generation-key unreachability,
never by explicit write-path calls).
"""

import ast
import pathlib

import numpy as np
import pytest

from repro.core.cache import DEFAULT_ANSWER_CACHE_SIZE, MISS, AnswerCache
from repro.core.factory import mechanism_from_spec
from repro.core.session import LdpRangeQuerySession
from repro.data.workloads import random_boxes
from repro.exceptions import ConfigurationError

DOMAIN = 64
SIDE = 16
SPECS = ["flat_oue", "hh_4", "hhc_4", "haar"]


class TestAnswerCache:
    def test_miss_then_hit(self):
        cache = AnswerCache(maxsize=4)
        assert cache.get(0, "a") is MISS
        cache.put(0, "a", 1.5)
        assert cache.get(0, "a") == 1.5
        assert cache.stats() == {
            "hits": 1, "misses": 1, "evictions": 0, "size": 1, "maxsize": 4,
        }

    def test_generation_partitions_the_keyspace(self):
        cache = AnswerCache(maxsize=4)
        cache.put(0, "a", 1.0)
        assert cache.get(1, "a") is MISS
        cache.put(1, "a", 2.0)
        assert cache.get(0, "a") == 1.0
        assert cache.get(1, "a") == 2.0

    def test_lru_eviction_order(self):
        cache = AnswerCache(maxsize=2)
        cache.put(0, "a", 1)
        cache.put(0, "b", 2)
        cache.get(0, "a")  # refresh "a" -> "b" is now LRU
        cache.put(0, "c", 3)
        assert cache.get(0, "b") is MISS
        assert cache.get(0, "a") == 1
        assert cache.get(0, "c") == 3
        assert cache.stats()["evictions"] == 1

    def test_arrays_copied_on_put_and_get(self):
        cache = AnswerCache(maxsize=4)
        stored = np.array([1.0, 2.0])
        cache.put(0, "a", stored)
        stored[0] = 99.0  # caller mutates its copy after the put
        first = cache.get(0, "a")
        np.testing.assert_array_equal(first, [1.0, 2.0])
        first[1] = 99.0  # and mutates a hit result
        np.testing.assert_array_equal(cache.get(0, "a"), [1.0, 2.0])

    def test_maxsize_zero_disables(self):
        cache = AnswerCache(maxsize=0)
        cache.put(0, "a", 1)
        assert cache.get(0, "a") is MISS
        assert len(cache) == 0
        # A disabled cache does not even count misses: get is a pure bypass.
        assert cache.stats()["misses"] == 0

    def test_resize_evicts_and_disables(self):
        cache = AnswerCache(maxsize=8)
        for index in range(6):
            cache.put(0, index, index)
        cache.resize(2)
        assert len(cache) == 2
        assert cache.stats()["evictions"] == 4
        cache.resize(0)
        assert len(cache) == 0
        assert cache.maxsize == 0

    def test_clear_preserves_counters(self):
        cache = AnswerCache(maxsize=4)
        cache.put(0, "a", 1)
        cache.get(0, "a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["hits"] == 1

    @pytest.mark.parametrize("bad", [-1, 1.5, "8", None])
    def test_invalid_maxsize_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            AnswerCache(maxsize=bad)
        with pytest.raises(ConfigurationError):
            AnswerCache().resize(bad)

    def test_default_size(self):
        assert AnswerCache().maxsize == DEFAULT_ANSWER_CACHE_SIZE


def _fitted(spec, domain=DOMAIN, users=3000):
    mechanism = mechanism_from_spec(spec, epsilon=1.1, domain_size=domain)
    items = np.random.default_rng(17).integers(
        0, getattr(mechanism, "flat_domain_size", mechanism.domain_size), size=users
    )
    return mechanism.fit_items(items, random_state=18).materialize()


class TestMechanismCaching:
    @pytest.mark.parametrize("spec", SPECS)
    def test_repeated_ranges_hit_and_stay_bit_identical(self, spec):
        mechanism = _fitted(spec)
        queries = np.sort(
            np.random.default_rng(19).integers(0, DOMAIN, size=(16, 2)), axis=1
        )
        first = mechanism.answer_ranges(queries)
        second = mechanism.answer_ranges(queries)
        np.testing.assert_array_equal(first, second)
        stats = mechanism.answer_cache_stats()
        assert stats["hits"] >= 1
        assert stats["misses"] >= 1

    @pytest.mark.parametrize("spec", SPECS)
    def test_scalar_and_quantile_surfaces_cache(self, spec):
        mechanism = _fitted(spec)
        assert mechanism.answer_range(3, 40) == mechanism.answer_range(3, 40)
        assert mechanism.quantiles((0.25, 0.75)) == mechanism.quantiles((0.25, 0.75))
        assert mechanism.answer_cache_stats()["hits"] >= 2

    def test_box_surfaces_cache(self):
        grid = mechanism_from_spec("grid2d_2", epsilon=1.1, domain_size=SIDE)
        points = np.random.default_rng(20).integers(0, SIDE, size=(3000, 2))
        grid.fit_points(points, random_state=21).materialize()
        boxes = random_boxes(SIDE, 12, dims=2, random_state=22)
        np.testing.assert_array_equal(
            grid.answer_boxes(boxes), grid.answer_boxes(boxes)
        )
        assert grid.answer_box(((0, 4), (2, 9))) == grid.answer_box(((0, 4), (2, 9)))
        assert grid.answer_cache_stats()["hits"] >= 2

    def test_write_invalidates_by_generation(self):
        mechanism = _fitted("hhc_4")
        before = mechanism.answer_range(0, 30)
        generation = mechanism.ingest_generation
        mechanism.partial_fit(
            np.random.default_rng(23).integers(0, DOMAIN, size=500),
            np.random.default_rng(24),
        )
        assert mechanism.ingest_generation == generation + 1
        mechanism.answer_range(0, 30)
        # The stale entry is unreachable under the new generation: the read
        # recomputed (a fresh miss) instead of serving the old answer, and
        # both generations' entries coexist until the LRU ages them out.
        stats = mechanism.answer_cache_stats()
        assert stats["misses"] >= 2
        assert stats["hits"] == 0
        assert stats["size"] == 2
        assert isinstance(before, float)

    def test_set_answer_cache_size_zero_disables(self):
        mechanism = _fitted("flat_oue")
        mechanism.set_answer_cache_size(0)
        queries = np.array([[0, 10], [5, 20]], dtype=np.int64)
        mechanism.answer_ranges(queries)
        mechanism.answer_ranges(queries)
        stats = mechanism.answer_cache_stats()
        assert stats == {
            "hits": 0, "misses": 0, "evictions": 0, "size": 0, "maxsize": 0,
        }

    def test_invalid_query_not_cached(self):
        mechanism = _fitted("hh_4")
        from repro.exceptions import InvalidQueryError

        with pytest.raises(InvalidQueryError):
            mechanism.answer_range(10, 5)
        assert mechanism.answer_cache_stats()["size"] == 0

    def test_session_delegates(self):
        session = LdpRangeQuerySession(1.1, DOMAIN, "hhc_4")
        session.collect(
            np.random.default_rng(25).integers(0, DOMAIN, size=1000),
            random_state=26,
        )
        session.set_answer_cache_size(7)
        assert session.answer_cache_stats()["maxsize"] == 7
        first = session.range_query(2, 30)
        assert session.range_query(2, 30) == first
        assert session.answer_cache_stats()["hits"] >= 1


class TestWritePathDiscipline:
    """Cache reads must never occur inside write paths (LDP-R003's spirit):
    invalidation works *only* because writes never consult the cache — they
    bump the generation and move on."""

    WRITE_PREFIXES = ("partial_fit", "merge_from", "fit_", "submit", "load_state_dict")

    def test_no_write_path_touches_the_answer_cache(self):
        src = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"
        offenders = []
        for path in sorted(src.rglob("*.py")):
            tree = ast.parse(path.read_text(), filename=str(path))
            for node in ast.walk(tree):
                if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if not node.name.startswith(self.WRITE_PREFIXES):
                    continue
                for inner in ast.walk(node):
                    if (
                        isinstance(inner, ast.Attribute)
                        and inner.attr == "_answer_cache"
                    ):
                        offenders.append(f"{path.name}:{node.name}")
        assert offenders == []
