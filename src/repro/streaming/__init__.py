"""Sharded, batched and streaming LDP collection.

The paper's protocols are presented one-shot: the whole population is
available up front and a single aggregator decodes all reports at once.  At
industry scale that assumption breaks — reports from millions of users
arrive in batches, land on many ingestion shards, and analysts want answers
before collection is "done".  LDP aggregation is naturally *mergeable*: an
aggregator's state is a sum of per-report contributions, so collection can
be split arbitrarily across time (batches) and space (shards) and reduced by
adding sufficient statistics, with estimates identical in distribution to a
one-shot fit of the union population.

This package is the serving-side of that observation, built on two layers
underneath it:

* every frequency oracle exposes a mergeable
  :class:`~repro.frequency_oracles.accumulators.OracleAccumulator`
  (``add`` / ``add_counts`` / ``merge`` / ``estimate``) over its sufficient
  statistic — column sums for OUE/SUE, support tallies for OLH, symbol
  histograms for GRR, coefficient sums for HRR;
* every accumulator-backed
  :class:`~repro.core.base.RangeQueryMechanism` (flat, hierarchical
  histograms, Haar wavelets) exposes incremental collection
  (:meth:`~repro.core.base.RangeQueryMechanism.partial_fit`) and shard
  combination (:meth:`~repro.core.base.RangeQueryMechanism.merge_from`).

:class:`ShardedCollector` ties the layers together: it fans report batches
across ``K`` simulated shards, each accumulating independently with its own
random stream, and reduces them into a single queryable mechanism (or
:class:`~repro.core.session.LdpRangeQuerySession`).

Example
-------
>>> import numpy as np
>>> from repro.streaming import ShardedCollector
>>> items = np.random.default_rng(0).integers(0, 1024, size=300_000)
>>> collector = ShardedCollector(
...     "hhc_4", epsilon=1.1, domain_size=1024, n_shards=4, random_state=7
... )
>>> for batch in np.array_split(items, 30):      # e.g. arrival order
...     _ = collector.submit(batch)
>>> session = collector.session()                # merged, ready to query
>>> answer = session.range_query(100, 500)

Privacy note: sharding changes nothing about the guarantee — each user still
sends exactly one ``epsilon``-LDP report; only the aggregator's bookkeeping
is distributed.

Beyond this module: routing policies beyond round-robin live in
:mod:`repro.streaming.routing` (hash-by-user, least-loaded) and plug into
the collector via ``router=``; :meth:`ShardedCollector.checkpoint` /
:meth:`~ShardedCollector.restore` give crash recovery through
:mod:`repro.persist`; and :mod:`repro.service` adds the asynchronous
multi-producer ingestion tier (plus cross-process execution) on top.
"""

from repro.streaming.evaluation import one_shot_vs_sharded
from repro.streaming.routing import (
    HashRouter,
    LeastLoadedRouter,
    RoundRobinRouter,
    ShardRouter,
    make_router,
    register_router,
)
from repro.streaming.sharded import ShardedCollector

__all__ = [
    "HashRouter",
    "LeastLoadedRouter",
    "RoundRobinRouter",
    "ShardRouter",
    "ShardedCollector",
    "make_router",
    "one_shot_vs_sharded",
    "register_router",
]
