"""Flat Laplace histogram under centralized differential privacy.

The trusted aggregator holds the exact per-item counts and releases each
count plus Laplace noise of scale ``1/epsilon`` (one user changes exactly
one count, so the L1 sensitivity of the histogram is 1... strictly 2 under
*replacement* neighbours; the convention here is add/remove neighbours with
sensitivity 1, the one used by the works the paper compares against).
Range queries are sums of noisy counts, so their variance grows linearly
with the range length — the centralized analogue of the paper's Fact 1.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import InvalidDomainError, InvalidQueryError, NotFittedError
from repro.privacy.budget import PrivacyBudget
from repro.privacy.randomness import RandomState, as_generator

__all__ = ["LaplaceHistogram", "laplace_noise_scale"]


def laplace_noise_scale(epsilon: float, sensitivity: float = 1.0) -> float:
    """Scale ``b = sensitivity / epsilon`` of the Laplace mechanism."""
    budget = PrivacyBudget(epsilon)
    if sensitivity <= 0:
        raise InvalidQueryError(f"sensitivity must be positive, got {sensitivity!r}")
    return float(sensitivity) / budget.epsilon


class LaplaceHistogram:
    """Centralized flat histogram with per-item Laplace noise."""

    def __init__(self, epsilon: float, domain_size: int) -> None:
        self._budget = PrivacyBudget(epsilon)
        if not isinstance(domain_size, (int, np.integer)) or domain_size < 1:
            raise InvalidDomainError(
                f"domain size must be a positive integer, got {domain_size!r}"
            )
        self._domain_size = int(domain_size)
        self._noisy_counts: Optional[np.ndarray] = None
        self._n_users: Optional[int] = None

    @property
    def epsilon(self) -> float:
        return self._budget.epsilon

    @property
    def domain_size(self) -> int:
        return self._domain_size

    @property
    def is_fitted(self) -> bool:
        return self._noisy_counts is not None

    def fit_counts(
        self, counts: np.ndarray, random_state: RandomState = None
    ) -> "LaplaceHistogram":
        """Release noisy counts for the exact per-item counts."""
        counts = np.asarray(counts, dtype=np.float64)
        if counts.shape != (self._domain_size,):
            raise InvalidDomainError(
                f"expected {self._domain_size} counts, got shape {counts.shape}"
            )
        rng = as_generator(random_state)
        scale = laplace_noise_scale(self.epsilon)
        self._noisy_counts = counts + rng.laplace(0.0, scale, size=self._domain_size)
        self._n_users = int(round(counts.sum()))
        return self

    def answer_range(self, start: int, end: int) -> float:
        """Normalized range estimate (fraction of the population)."""
        if self._noisy_counts is None:
            raise NotFittedError("fit_counts must be called first")
        if not 0 <= start <= end < self._domain_size:
            raise InvalidQueryError(f"invalid range [{start}, {end}]")
        if not self._n_users:
            return 0.0
        return float(self._noisy_counts[start : end + 1].sum()) / self._n_users

    def range_variance(self, range_length: int, normalized: bool = True) -> float:
        """Exact variance of a length-``r`` range answer.

        Each noisy count contributes ``2 b^2`` of variance; normalization by
        ``N`` divides by ``N^2``.
        """
        if not 1 <= range_length <= self._domain_size:
            raise InvalidQueryError(f"invalid range length {range_length!r}")
        scale = laplace_noise_scale(self.epsilon)
        variance = 2.0 * scale**2 * range_length
        if normalized:
            if not self._n_users:
                raise NotFittedError("fit_counts must be called before normalization")
            variance /= float(self._n_users) ** 2
        return variance
