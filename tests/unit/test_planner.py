"""Unit tests for repro.planner."""

import numpy as np
import pytest

from repro.analysis.variance import (
    flat_range_variance,
    grid_nd_box_variance,
    haar_range_variance,
    hh_consistent_range_variance,
    hh_range_variance,
)
from repro.core.factory import mechanism_from_spec
from repro.core.multidim import HierarchicalGrid2D, HierarchicalGridND
from repro.data.workloads import (
    BoxWorkload,
    RangeWorkload,
    random_boxes,
    random_range_queries,
)
from repro.exceptions import ConfigurationError
from repro.planner import DEFAULT_BRANCHINGS, Plan, PlanCandidate, plan


EPSILON = 1.1
N_USERS = 50_000


@pytest.fixture(scope="module")
def box_workload():
    return BoxWorkload(32, 3, random_boxes(32, 40, dims=3, random_state=5))


@pytest.fixture(scope="module")
def range_workload():
    return random_range_queries(1024, 30, random_state=6)


class TestRanking:
    def test_candidates_sorted_ascending(self, box_workload):
        chosen = plan(box_workload, n_users=N_USERS, epsilon=EPSILON)
        bounds = [c.predicted_variance for c in chosen.candidates]
        assert bounds == sorted(bounds)
        assert chosen.best is chosen.candidates[0]
        assert chosen.worst is chosen.candidates[-1]
        assert chosen.spec == chosen.best.spec
        assert chosen.predicted_variance == chosen.best.predicted_variance

    def test_pick_minimizes_independently_recomputed_bounds(self, box_workload):
        """The winner's bound equals the minimum over the candidate set when
        every bound is recomputed from the closed forms directly."""
        chosen = plan(box_workload, n_users=N_USERS, epsilon=EPSILON)
        lengths = np.max(box_workload.axis_lengths, axis=1)

        def bound_for(branching):
            values = [
                grid_nd_box_variance(
                    EPSILON, N_USERS, int(r), 32, branching, dims=3
                )
                for r in lengths
            ]
            return float(np.mean(values))

        recomputed = {b: bound_for(b) for b in DEFAULT_BRANCHINGS}
        assert chosen.best.predicted_variance == pytest.approx(
            min(recomputed.values())
        )
        assert recomputed[chosen.best.branching] == pytest.approx(
            min(recomputed.values())
        )
        for candidate in chosen.candidates:
            assert candidate.predicted_variance == pytest.approx(
                recomputed[candidate.branching]
            )

    def test_one_dimensional_pick_minimizes_bounds(self, range_workload):
        chosen = plan(range_workload, n_users=N_USERS, epsilon=EPSILON)
        lengths = range_workload.lengths

        def mean(bound):
            return float(np.mean([bound(int(r)) for r in lengths]))

        recomputed = {
            "flat": mean(
                lambda r: flat_range_variance(EPSILON, N_USERS, r, 1024)
            ),
            "haar": mean(
                lambda r: haar_range_variance(EPSILON, N_USERS, 1024)
            ),
        }
        for b in DEFAULT_BRANCHINGS:
            recomputed[f"hh_{b}"] = mean(
                lambda r: hh_range_variance(EPSILON, N_USERS, r, 1024, b)
            )
            recomputed[f"hhc_{b}"] = mean(
                lambda r: hh_consistent_range_variance(EPSILON, N_USERS, r, 1024, b)
            )
        assert chosen.best.predicted_variance == pytest.approx(
            min(recomputed.values())
        )
        assert recomputed[chosen.best.spec] == pytest.approx(
            min(recomputed.values())
        )

    def test_stable_tie_break_by_enumeration_order(self):
        """Extra oracles share V_F, so same-family-same-B candidates tie and
        keep enumeration order (oue listed before the extras)."""
        chosen = plan(
            n_users=N_USERS,
            epsilon=EPSILON,
            domain_size=16,
            dims=2,
            branchings=(4,),
            oracles=("oue", "hrr"),
        )
        assert [c.spec for c in chosen.candidates] == ["grid2d_4", "grid2d_4_hrr"]
        assert (
            chosen.candidates[0].predicted_variance
            == chosen.candidates[1].predicted_variance
        )


class TestCandidateSpaces:
    def test_multidim_candidates_are_grids_only(self, box_workload):
        chosen = plan(box_workload, n_users=N_USERS, epsilon=EPSILON)
        assert {c.family for c in chosen.candidates} == {"gridnd"}
        assert {c.branching for c in chosen.candidates} == set(DEFAULT_BRANCHINGS)
        assert all(c.spec.startswith("grid3d_") for c in chosen.candidates)
        assert all(c.dims == 3 for c in chosen.candidates)

    def test_one_dimensional_candidate_space(self, range_workload):
        chosen = plan(range_workload, n_users=N_USERS, epsilon=EPSILON)
        families = sorted({c.family for c in chosen.candidates})
        assert families == ["flat", "haar", "hh", "hhc"]
        hh_specs = {c.spec for c in chosen.candidates if c.family == "hh"}
        assert hh_specs == {f"hh_{b}" for b in DEFAULT_BRANCHINGS}

    def test_worst_case_plans_for_full_domain(self):
        """With no workload the bounds are evaluated at r = domain_size."""
        chosen = plan(n_users=N_USERS, epsilon=EPSILON, domain_size=64, dims=2)
        for candidate in chosen.candidates:
            assert candidate.predicted_variance == pytest.approx(
                grid_nd_box_variance(
                    EPSILON, N_USERS, 64, 64, candidate.branching, dims=2
                )
            )
        assert chosen.workload_name == "worst-case"


class TestPlanObject:
    def test_mechanism_instantiates_winning_spec(self, box_workload):
        chosen = plan(box_workload, n_users=N_USERS, epsilon=EPSILON)
        mechanism = chosen.mechanism()
        assert isinstance(mechanism, HierarchicalGridND)
        assert mechanism.dims == 3
        assert mechanism.branching == chosen.best.branching
        assert mechanism.epsilon == EPSILON

    def test_describe_lists_every_candidate(self, box_workload):
        chosen = plan(box_workload, n_users=N_USERS, epsilon=EPSILON)
        text = chosen.describe()
        for candidate in chosen.candidates:
            assert candidate.spec in text
        assert "predicted variance" in text

    def test_plan_is_frozen(self, box_workload):
        chosen = plan(box_workload, n_users=N_USERS, epsilon=EPSILON)
        with pytest.raises(AttributeError):
            chosen.n_users = 1
        assert isinstance(chosen, Plan)
        assert isinstance(chosen.best, PlanCandidate)


class TestAutoSpec:
    def test_auto_resolves_through_the_planner(self, range_workload):
        chosen = plan(range_workload, n_users=N_USERS, epsilon=EPSILON)
        mechanism = mechanism_from_spec(
            "auto", EPSILON, 1024, n_users=N_USERS, workload=range_workload
        )
        assert type(mechanism).__name__ == type(chosen.mechanism()).__name__

    def test_auto_multidim_resolves_to_grid(self):
        mechanism = mechanism_from_spec("auto_2d", EPSILON, 16, n_users=N_USERS)
        assert isinstance(mechanism, HierarchicalGrid2D)

    def test_auto_requires_population_size(self):
        with pytest.raises(ConfigurationError, match="n_users"):
            mechanism_from_spec("auto", EPSILON, 1024)


class TestValidation:
    def test_needs_workload_or_domain(self):
        with pytest.raises(ConfigurationError):
            plan(n_users=N_USERS, epsilon=EPSILON)

    @pytest.mark.parametrize("bad_users", [0, -5, 2.5, "many"])
    def test_rejects_bad_population(self, bad_users):
        with pytest.raises(ConfigurationError):
            plan(n_users=bad_users, epsilon=EPSILON, domain_size=64)

    @pytest.mark.parametrize("bad_branchings", [(), (1,), (2, 1)])
    def test_rejects_bad_branchings(self, bad_branchings):
        with pytest.raises(ConfigurationError):
            plan(
                n_users=N_USERS,
                epsilon=EPSILON,
                domain_size=64,
                branchings=bad_branchings,
            )

    def test_rejects_dims_conflicting_with_workload(self, box_workload):
        with pytest.raises(ConfigurationError, match="dims"):
            plan(box_workload, n_users=N_USERS, epsilon=EPSILON, dims=2)

    def test_rejects_domain_conflicting_with_workload(self, box_workload):
        with pytest.raises(ConfigurationError, match="domain_size"):
            plan(box_workload, n_users=N_USERS, epsilon=EPSILON, domain_size=64)

    def test_rejects_foreign_workload_type(self):
        with pytest.raises(ConfigurationError, match="workload"):
            plan(object(), n_users=N_USERS, epsilon=EPSILON)
