"""Unit tests for the centralized-DP baselines (Table 7 substrate)."""

import numpy as np
import pytest

from repro.centralized.hierarchical import CentralHierarchicalHistogram
from repro.centralized.laplace import LaplaceHistogram, laplace_noise_scale
from repro.centralized.wavelet import PriveletWavelet
from repro.exceptions import InvalidDomainError, InvalidQueryError, NotFittedError


class TestLaplaceHistogram:
    def test_noise_scale(self):
        assert laplace_noise_scale(0.5) == pytest.approx(2.0)
        with pytest.raises(InvalidQueryError):
            laplace_noise_scale(1.0, sensitivity=0.0)

    def test_fit_and_answer(self, medium_counts, rng):
        domain = medium_counts.shape[0]
        histogram = LaplaceHistogram(1.0, domain).fit_counts(medium_counts, rng)
        truth = medium_counts[10:101].sum() / medium_counts.sum()
        assert histogram.answer_range(10, 100) == pytest.approx(truth, abs=0.01)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            LaplaceHistogram(1.0, 16).answer_range(0, 3)

    def test_range_variance_linear(self, medium_counts, rng):
        histogram = LaplaceHistogram(1.0, 256).fit_counts(medium_counts, rng)
        assert histogram.range_variance(100) == pytest.approx(100 * histogram.range_variance(1))

    def test_shape_validation(self, rng):
        with pytest.raises(InvalidDomainError):
            LaplaceHistogram(1.0, 16).fit_counts(np.zeros(15), rng)

    def test_invalid_query(self, medium_counts, rng):
        histogram = LaplaceHistogram(1.0, 256).fit_counts(medium_counts, rng)
        with pytest.raises(InvalidQueryError):
            histogram.answer_range(0, 256)


class TestCentralHierarchical:
    def test_noise_scale_splits_budget(self):
        mechanism = CentralHierarchicalHistogram(1.0, 256, branching=2)
        assert mechanism.per_node_noise_scale() == pytest.approx(8.0)
        assert mechanism.per_node_noise_variance() == pytest.approx(128.0)

    def test_fit_and_answer_close_to_truth(self, medium_counts, rng):
        domain = medium_counts.shape[0]
        mechanism = CentralHierarchicalHistogram(1.0, domain, branching=16)
        mechanism.fit_counts(medium_counts, rng)
        truth = medium_counts[20:201].sum() / medium_counts.sum()
        assert mechanism.answer_range(20, 200) == pytest.approx(truth, abs=0.01)

    def test_consistency_makes_answers_additive(self, medium_counts, rng):
        mechanism = CentralHierarchicalHistogram(1.0, 256, branching=4, consistency=True)
        mechanism.fit_counts(medium_counts, rng)
        whole = mechanism.answer_range(5, 200, normalized=False)
        split = mechanism.answer_range(5, 99, normalized=False) + mechanism.answer_range(
            100, 200, normalized=False
        )
        assert whole == pytest.approx(split, abs=1e-6)

    def test_unnormalized_answers(self, medium_counts, rng):
        mechanism = CentralHierarchicalHistogram(2.0, 256, branching=16)
        mechanism.fit_counts(medium_counts, rng)
        raw = mechanism.answer_range(0, 255, normalized=False)
        assert raw == pytest.approx(medium_counts.sum(), rel=0.01)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            CentralHierarchicalHistogram(1.0, 64).answer_range(0, 3)

    def test_more_accurate_than_local_at_same_epsilon(self, medium_counts, rng):
        # The whole point of the comparison: centralized noise is O(1/N)
        # smaller.  Check the central mechanism is far closer to the truth
        # than the local one for a mid-length query.
        from repro.core.hierarchical import HierarchicalHistogramMechanism

        domain = medium_counts.shape[0]
        truth = medium_counts[10:150].sum() / medium_counts.sum()
        central = CentralHierarchicalHistogram(1.0, domain, branching=4).fit_counts(
            medium_counts, rng
        )
        local = HierarchicalHistogramMechanism(1.0, domain, branching=4).fit_counts(
            medium_counts, random_state=rng
        )
        central_error = abs(central.answer_range(10, 149) - truth)
        local_error = abs(local.answer_range(10, 149) - truth)
        assert central_error < local_error + 0.02


class TestPrivelet:
    def test_noise_scales_follow_equal_contribution_rule(self):
        mechanism = PriveletWavelet(1.0, 256)
        h = mechanism.height
        assert mechanism.noise_scale(0) == pytest.approx((h + 1) / np.sqrt(256))
        assert mechanism.noise_scale(3) == pytest.approx((h + 1) / (2 ** 1.5))
        with pytest.raises(InvalidQueryError):
            mechanism.noise_scale(h + 1)

    def test_fit_and_answer(self, medium_counts, rng):
        domain = medium_counts.shape[0]
        mechanism = PriveletWavelet(1.0, domain).fit_counts(medium_counts, rng)
        truth = medium_counts[30:201].sum() / medium_counts.sum()
        assert mechanism.answer_range(30, 200) == pytest.approx(truth, abs=0.01)

    def test_answer_ranges_vectorised(self, medium_counts, rng):
        mechanism = PriveletWavelet(1.0, 256).fit_counts(medium_counts, rng)
        queries = np.array([[0, 255], [3, 17], [100, 200]])
        np.testing.assert_allclose(
            mechanism.answer_ranges(queries),
            [mechanism.answer_range(a, b) for a, b in queries],
        )

    def test_range_query_variance_closed_form(self, medium_counts, rng):
        # Monte Carlo check of the closed-form variance for one query.
        domain = 256
        mechanism = PriveletWavelet(1.0, domain)
        predicted = None
        errors = []
        truth = medium_counts[17:230].sum()
        for seed in range(200):
            mechanism.fit_counts(medium_counts, np.random.default_rng(seed))
            if predicted is None:
                predicted = mechanism.range_query_variance(17, 229, normalized=False)
            errors.append(mechanism.answer_range(17, 229, normalized=False) - truth)
        observed = np.var(errors)
        assert observed == pytest.approx(predicted, rel=0.4)

    def test_padding(self, rng):
        counts = np.ones(100) * 50
        mechanism = PriveletWavelet(1.0, 100).fit_counts(counts, rng)
        assert mechanism.padded_size == 128
        assert mechanism.answer_range(0, 99) == pytest.approx(1.0, abs=0.05)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            PriveletWavelet(1.0, 64).answer_range(0, 3)
