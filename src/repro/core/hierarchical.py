"""Hierarchical histogram mechanisms (``HH_B``, Sections 4.3–4.5).

Protocol summary (Section 4.4):

* **Input transformation** — each user views her item as a weight-one path
  from a leaf to the root of a complete B-ary tree over the domain.
* **Perturbation** — the user samples one tree level (uniformly, the
  variance-optimal choice proved in Lemma 4.4), forms the one-hot vector
  over that level's nodes and perturbs it with a frequency oracle
  (OUE / HRR / OLH — giving ``TreeOUE``, ``TreeHRR``, ``TreeOLH``).
* **Aggregation** — the aggregator reconstructs, per level, an unbiased
  estimate of the fraction of the population in each node.
* **Consistency (optional, Section 4.5)** — constrained inference makes
  parent estimates equal the sum of their children and provably shrinks the
  variance by at least ``B/(B+1)`` (the ``CI`` suffix in the paper, e.g.
  ``TreeOUECI`` / ``HHc_B``).
* **Query answering** — a range is decomposed into at most
  ``2(B-1) log_B D`` B-adic nodes whose estimates are summed.

The *budget-splitting* strategy (each user reports at every level with
``epsilon / h``) is also implemented, purely to support the ablation that
justifies the paper's choice of level *sampling*.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.base import RangeQueryMechanism
from repro.core.cache import MISS
from repro.exceptions import ConfigurationError, InvalidQueryError
from repro.frequency_oracles.accumulators import OracleAccumulator
from repro.frequency_oracles.registry import make_oracle
from repro.hierarchy.consistency import enforce_consistency
from repro.hierarchy.decomposition import batched_range_sums, decompose_to_runs
from repro.hierarchy.tree import DomainTree

__all__ = ["HierarchicalHistogramMechanism"]

_BUDGET_STRATEGIES = ("sampling", "splitting")


class HierarchicalHistogramMechanism(RangeQueryMechanism):
    """The ``HH_B`` framework instantiated with a pluggable frequency oracle.

    Parameters
    ----------
    epsilon:
        Per-user privacy budget.
    domain_size:
        Number of items ``D``.
    branching:
        Tree fan-out ``B >= 2``.  The paper's analysis favours ``B = 4``–``5``
        without consistency and ``B = 8``–``9`` with it.
    oracle:
        Frequency oracle name used at every level (``"oue"``, ``"hrr"``,
        ``"olh"``, ...).
    consistency:
        Apply constrained inference after aggregation (the ``CI`` variants).
    level_probabilities:
        Probability of a user sampling each level (length ``h``); defaults
        to uniform, the optimal choice of Lemma 4.4.
    budget_strategy:
        ``"sampling"`` (default, each user spends the full budget on one
        sampled level) or ``"splitting"`` (every user reports every level
        with ``epsilon / h`` — implemented for the ablation benchmark only).
    oracle_kwargs:
        Extra keyword arguments forwarded to every per-level oracle.
    """

    def __init__(
        self,
        epsilon: float,
        domain_size: int,
        branching: int = 4,
        oracle: str = "oue",
        consistency: bool = True,
        level_probabilities: Optional[Sequence[float]] = None,
        budget_strategy: str = "sampling",
        name: Optional[str] = None,
        **oracle_kwargs,
    ) -> None:
        if budget_strategy not in _BUDGET_STRATEGIES:
            raise ConfigurationError(
                f"budget_strategy must be one of {_BUDGET_STRATEGIES}, got {budget_strategy!r}"
            )
        default_name = f"Tree{oracle.upper()}{'CI' if consistency else ''}_B{branching}"
        super().__init__(epsilon, domain_size, name=name or default_name)
        self._tree = DomainTree(domain_size, branching)
        self._oracle_name = str(oracle)
        self._oracle_kwargs = dict(oracle_kwargs)
        self._consistency = bool(consistency)
        self._budget_strategy = budget_strategy
        self._level_probabilities = self._normalize_level_probabilities(level_probabilities)
        # Per-level oracles: the report budget depends on the strategy.
        per_level_epsilon = (
            self.epsilon
            if budget_strategy == "sampling"
            else self.epsilon / self._tree.height
        )
        self._oracles = {
            level: make_oracle(
                self._oracle_name,
                epsilon=per_level_epsilon,
                domain_size=self._tree.nodes_at_level(level),
                **self._oracle_kwargs,
            )
            for level in self._tree.levels
        }
        self._accumulators: Optional[Dict[int, OracleAccumulator]] = None
        self._raw_levels: Optional[List[np.ndarray]] = None
        self._levels: Optional[List[np.ndarray]] = None
        self._level_prefix: Optional[Dict[int, np.ndarray]] = None
        self._level_user_counts: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    @property
    def tree(self) -> DomainTree:
        """The domain tree geometry."""
        return self._tree

    @property
    def branching(self) -> int:
        """Tree fan-out ``B``."""
        return self._tree.branching

    @property
    def consistency(self) -> bool:
        """Whether constrained inference is applied after aggregation."""
        return self._consistency

    @property
    def budget_strategy(self) -> str:
        """``"sampling"`` or ``"splitting"``."""
        return self._budget_strategy

    @property
    def level_probabilities(self) -> np.ndarray:
        """Probability of a user sampling each level (length ``h``)."""
        return self._level_probabilities.copy()

    @property
    def level_user_counts(self) -> Optional[np.ndarray]:
        """Number of users that reported each level in the last collection."""
        return None if self._level_user_counts is None else self._level_user_counts.copy()

    def level_estimates(self, raw: bool = False) -> List[np.ndarray]:
        """Per-level node estimates (after consistency unless ``raw``)."""
        self._require_fitted()
        source = self._raw_levels if raw else self._levels
        return [level.copy() for level in source]

    def _normalize_level_probabilities(
        self, probabilities: Optional[Sequence[float]]
    ) -> np.ndarray:
        height = self._tree.height
        if probabilities is None:
            return np.full(height, 1.0 / height)
        array = np.asarray(probabilities, dtype=np.float64)
        if array.shape != (height,):
            raise ConfigurationError(
                f"level_probabilities must have {height} entries, got shape {array.shape}"
            )
        if np.any(array < 0) or array.sum() <= 0:
            raise ConfigurationError("level_probabilities must be non-negative and sum > 0")
        return array / array.sum()

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def _reset_accumulators(self) -> None:
        self._accumulators = {
            level: self._oracles[level].accumulator() for level in self._tree.levels
        }
        self._level_user_counts = np.zeros(self._tree.height, dtype=np.int64)

    def _collect(
        self,
        items: Optional[np.ndarray],
        counts: np.ndarray,
        rng: np.random.Generator,
        mode: str,
    ) -> None:
        self._reset_accumulators()
        self._accumulate_batch(items, counts, rng, mode)
        self._mark_dirty()

    def _partial_collect(
        self,
        items: np.ndarray,
        counts: np.ndarray,
        rng: np.random.Generator,
        mode: str,
    ) -> None:
        if self._accumulators is None:
            self._reset_accumulators()
        self._accumulate_batch(items, counts, rng, mode)

    def _merge_state(self, other: "HierarchicalHistogramMechanism") -> None:
        if self._accumulators is None:
            self._reset_accumulators()
        for level in self._tree.levels:
            self._accumulators[level].merge(other._accumulators[level])
        self._level_user_counts += other._level_user_counts

    def _merge_signature(self) -> tuple:
        return super()._merge_signature() + (
            self._oracle_name,
            self.branching,
            self._consistency,
            self._budget_strategy,
            tuple(np.round(self._level_probabilities, 12)),
            tuple(sorted(self._oracle_kwargs.items())),
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return self._pack_level_state(self._accumulators, self._level_user_counts)

    def load_state_dict(self, state: dict) -> "HierarchicalHistogramMechanism":
        n_users, accumulators, counts = self._unpack_level_state(
            state, self._tree.levels, lambda level: self._oracles[level].accumulator()
        )
        if accumulators is not None:
            self._accumulators = accumulators
            self._level_user_counts = counts
            self._mark_dirty()
        else:
            self._accumulators = None
            self._raw_levels = None
            self._levels = None
            self._level_prefix = None
            self._level_user_counts = None
            self._mark_clean()
        self._n_users = n_users
        return self

    def _accumulate_batch(
        self,
        items: Optional[np.ndarray],
        counts: np.ndarray,
        rng: np.random.Generator,
        mode: str,
    ) -> None:
        if self._budget_strategy == "splitting":
            self._accumulate_splitting(items, counts, rng, mode)
        elif mode == "per_user":
            self._accumulate_sampling_per_user(items, rng)
        else:
            self._accumulate_sampling_aggregate(counts, rng)

    def _accumulate_sampling_per_user(
        self, items: np.ndarray, rng: np.random.Generator
    ) -> None:
        """Each user samples one level and runs the real local protocol.

        Only levels that actually received users are visited (they are also
        the only ones that consume protocol randomness, so the skip changes
        no random stream), keeping a tiny streaming batch at O(active
        levels) instead of O(h) mask scans.
        """
        height = self._tree.height
        n_users = items.shape[0]
        assignments = rng.choice(height, size=n_users, p=self._level_probabilities)
        batch_level_counts = np.bincount(assignments, minlength=height)
        self._level_user_counts += batch_level_counts
        for level_index in np.flatnonzero(batch_level_counts):
            level = int(level_index) + 1
            level_items = items[assignments == level_index]
            nodes = self._tree.nodes_of_items(level, level_items)
            oracle = self._oracles[level]
            self._accumulators[level].add(oracle.encode_batch(nodes, rng))

    def _accumulate_sampling_aggregate(
        self, counts: np.ndarray, rng: np.random.Generator
    ) -> None:
        """Aggregate-mode collection: partition counts across levels exactly.

        Each item's count is split across the ``h`` levels with a
        multinomial (realised as sequential binomial thinning), which is the
        exact distribution of how the level-sampling protocol partitions the
        population; multinomial splits of separate batches add up to the
        split of the union, which is what makes this path incremental.  Each
        level's node counts then drive the oracle accumulator's fast
        simulated-aggregate path.

        The thinning and the node histograms operate on the batch's
        *support* (items with non-zero count) only — a small streaming batch
        touches O(nnz · h) entries instead of O(D · h), leaving the
        per-level noise sampling inside ``add_counts`` as the only
        full-domain work.
        """
        height = self._tree.height
        support = np.flatnonzero(counts)
        remaining = counts[support].astype(np.int64)  # fancy indexing copies
        remaining_probability = 1.0
        for level in self._tree.levels:
            probability = self._level_probabilities[level - 1]
            if level == height:
                level_counts = remaining
            else:
                share = 0.0 if remaining_probability <= 0 else min(
                    1.0, probability / remaining_probability
                )
                level_counts = rng.binomial(remaining, share)
                remaining = remaining - level_counts
                remaining_probability -= probability
            batch_users = int(level_counts.sum())
            self._level_user_counts[level - 1] += batch_users
            if batch_users == 0:
                continue
            node_counts = np.bincount(
                self._tree.nodes_of_items(level, support),
                weights=level_counts,
                minlength=self._tree.nodes_at_level(level),
            ).astype(np.int64)
            self._accumulators[level].add_counts(node_counts, rng)

    def _accumulate_splitting(
        self,
        items: Optional[np.ndarray],
        counts: np.ndarray,
        rng: np.random.Generator,
        mode: str,
    ) -> None:
        """Ablation path: every user reports every level with ``eps / h``."""
        n_users = int(items.shape[0]) if counts is None else int(counts.sum())
        self._level_user_counts += n_users
        for level in self._tree.levels:
            oracle = self._oracles[level]
            if mode == "per_user":
                nodes = self._tree.nodes_of_items(level, items)
                self._accumulators[level].add(oracle.encode_batch(nodes, rng))
            else:
                node_counts = self._tree.level_histogram_from_counts(level, counts)
                self._accumulators[level].add_counts(node_counts.astype(np.int64), rng)

    def _refresh_estimates(self) -> None:
        raw = [
            np.asarray(self._accumulators[level].estimate(), dtype=np.float64)
            for level in self._tree.levels
        ]
        self._raw_levels = raw
        if self._consistency:
            self._levels = enforce_consistency(raw, self.branching, root_value=1.0)
        else:
            self._levels = [level.copy() for level in raw]
        self._level_prefix = {
            level: np.concatenate([[0.0], np.cumsum(self._levels[level - 1])])
            for level in self._tree.levels
        }

    # ------------------------------------------------------------------
    # Query answering
    # ------------------------------------------------------------------
    def _answer_range(self, start: int, end: int) -> float:
        runs = decompose_to_runs(self._tree, start, end)
        answer = 0.0
        for run in runs:
            prefix = self._level_prefix[run.level]
            answer += prefix[run.last + 1] - prefix[run.first]
        return float(answer)

    def answer_ranges(self, queries: np.ndarray) -> np.ndarray:
        """Vectorised workload evaluation.

        With consistency enforced, a range answer equals the sum of the leaf
        estimates it covers (the estimates are exactly additive), so large
        workloads are answered in O(1) per query from the leaf prefix sums.
        Without consistency the answers genuinely depend on the B-adic
        decomposition; all decompositions are evaluated together with
        :func:`~repro.hierarchy.decomposition.batched_range_sums`, walking
        the tree once per level for the whole workload instead of once per
        query.
        """
        self._require_fitted()
        queries = np.asarray(queries, dtype=np.int64)
        if queries.ndim != 2 or queries.shape[1] != 2:
            raise InvalidQueryError("queries must be an (n, 2) array")
        if queries.size and (
            queries.min() < 0
            or queries[:, 1].max() >= self._domain_size
            or np.any(queries[:, 0] > queries[:, 1])
        ):
            # Fall back to the base implementation for its precise errors.
            return super().answer_ranges(queries)
        key = ("ranges", queries.shape[0], queries.tobytes())
        cached = self._answer_cache.get(self._ingest_generation, key)
        if cached is not MISS:
            return cached
        if not self._consistency:
            value = batched_range_sums(self._tree, self._level_prefix, queries)
        else:
            leaf_prefix = self._level_prefix[self._tree.height]
            value = leaf_prefix[queries[:, 1] + 1] - leaf_prefix[queries[:, 0]]
        self._answer_cache.put(self._ingest_generation, key, value)
        return value

    def estimate_frequencies(self) -> np.ndarray:
        """Leaf-level estimates restricted to the original domain."""
        self._require_fitted()
        leaves = self._levels[-1]
        return leaves[: self._domain_size].copy()

    def estimate_cdf(self) -> np.ndarray:
        """The materialized leaf prefix sums, sliced to the original domain.

        Bit-identical to ``cumsum(estimate_frequencies())`` (a prefix of a
        sequential cumulative sum equals the cumulative sum of the prefix)
        but free: the leaf prefix array already exists for range answering.
        """
        self._require_fitted()
        leaf_prefix = self._level_prefix[self._tree.height]
        return leaf_prefix[1 : self._domain_size + 1].copy()

    def per_query_variance_bound(self, range_length: int) -> float:
        """The theoretical bound of eq. (1) / Section 4.5 for this instance."""
        from repro.analysis.variance import (
            hh_consistent_range_variance,
            hh_range_variance,
        )

        self._require_fitted()
        bound = hh_consistent_range_variance if self._consistency else hh_range_variance
        return bound(
            epsilon=self.epsilon,
            n_users=self.n_users,
            range_length=range_length,
            domain_size=max(2, self._domain_size),
            branching=self.branching,
        )
