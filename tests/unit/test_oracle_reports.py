"""Unit tests for the OracleReports payload/metadata validation."""

import numpy as np
import pytest

from repro.exceptions import InvalidQueryError
from repro.frequency_oracles.base import OracleReports


class TestOracleReportsValidation:
    def test_negative_n_users_rejected(self):
        with pytest.raises(InvalidQueryError):
            OracleReports(payload={}, n_users=-1)

    def test_matching_leading_dimension_accepted(self):
        reports = OracleReports(
            payload={"bits": np.zeros((7, 3), dtype=np.uint8)}, n_users=7
        )
        assert reports.n_users == 7

    def test_mismatched_leading_dimension_rejected(self):
        with pytest.raises(InvalidQueryError):
            OracleReports(payload={"bits": np.zeros((7, 3), dtype=np.uint8)}, n_users=8)

    def test_mismatched_vector_payload_rejected(self):
        # OLH-style parallel arrays: every array must be per-user.
        with pytest.raises(InvalidQueryError):
            OracleReports(
                payload={
                    "a": np.zeros(5, dtype=np.int64),
                    "b": np.zeros(4, dtype=np.int64),
                },
                n_users=5,
            )

    def test_scalar_metadata_entries_are_exempt(self):
        reports = OracleReports(
            payload={
                "packed_bits": np.zeros((5, 2), dtype=np.uint8),
                "n_bits": 16,
            },
            n_users=5,
        )
        assert reports.payload["n_bits"] == 16
