"""Core LDP range-query mechanisms (the paper's primary contribution).

* :class:`FlatMechanism` — sums per-item frequency-oracle estimates
  (Section 4.2); the baseline whose error grows linearly with range length.
* :class:`HierarchicalHistogramMechanism` — the ``HH_B`` framework of
  Sections 4.3–4.5: every user samples one level of a complete B-ary tree,
  reports her node at that level through a frequency oracle, and the
  aggregator optionally applies constrained inference (consistency).
* :class:`HaarWaveletMechanism` — the ``HaarHRR`` method of Section 4.6:
  users perturb one Haar coefficient level with Hadamard randomized
  response.
* :mod:`repro.core.quantiles` — prefix/CDF/quantile estimation on top of any
  mechanism (Section 4.7).
* :class:`HierarchicalGrid2D` — the two-dimensional extension sketched in
  Section 6.
"""

from repro.core.base import RangeQueryMechanism
from repro.core.factory import make_mechanism, mechanism_from_spec
from repro.core.flat import FlatMechanism
from repro.core.hierarchical import HierarchicalHistogramMechanism
from repro.core.multidim import HierarchicalGrid2D, HierarchicalGridND
from repro.core.quantiles import estimate_cdf, estimate_quantiles
from repro.core.session import Grid2DSession, GridNDSession, LdpRangeQuerySession
from repro.core.wavelet import HaarWaveletMechanism

__all__ = [
    "RangeQueryMechanism",
    "FlatMechanism",
    "HierarchicalHistogramMechanism",
    "HaarWaveletMechanism",
    "HierarchicalGrid2D",
    "HierarchicalGridND",
    "Grid2DSession",
    "GridNDSession",
    "LdpRangeQuerySession",
    "make_mechanism",
    "mechanism_from_spec",
    "estimate_cdf",
    "estimate_quantiles",
]
