"""Unit tests for the frequency oracle registry / factory."""

import pytest

from repro.exceptions import ConfigurationError
from repro.frequency_oracles.base import FrequencyOracle
from repro.frequency_oracles.registry import available_oracles, make_oracle, register_oracle


class TestRegistry:
    def test_all_paper_oracles_available(self):
        names = available_oracles()
        for expected in ("oue", "olh", "hrr", "grr", "sue"):
            assert expected in names

    @pytest.mark.parametrize("name", ["oue", "sue", "grr", "hrr", "olh"])
    def test_make_oracle_returns_configured_instance(self, name):
        oracle = make_oracle(name, epsilon=1.1, domain_size=32)
        assert isinstance(oracle, FrequencyOracle)
        assert oracle.epsilon == pytest.approx(1.1)
        assert oracle.domain_size == 32

    def test_make_oracle_is_case_insensitive(self):
        assert make_oracle("OUE", epsilon=1.0, domain_size=8).name == "oue"

    def test_make_oracle_forwards_kwargs(self):
        oracle = make_oracle("olh", epsilon=1.0, domain_size=16, hash_range=8)
        assert oracle.hash_range == 8

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            make_oracle("nonexistent", epsilon=1.0, domain_size=8)

    def test_register_custom_oracle(self):
        from repro.frequency_oracles.unary import OptimizedUnaryEncoding

        class CustomOracle(OptimizedUnaryEncoding):
            name = "custom-test-oracle"

        register_oracle(CustomOracle)
        assert "custom-test-oracle" in available_oracles()
        assert isinstance(
            make_oracle("custom-test-oracle", epsilon=1.0, domain_size=4), CustomOracle
        )

    def test_register_requires_name(self):
        class Anonymous:
            name = ""

        with pytest.raises(ConfigurationError):
            register_oracle(Anonymous)
