"""Developer tooling for the ``repro`` codebase.

:mod:`repro.devtools.lint` is an AST-based static-analysis pass that turns
the repository's correctness *conventions* — RNG hygiene, epsilon flow,
write-path purity, asyncio discipline, persist coverage, exception
discipline — into machine-checked rules.  It ships as
``python -m repro lint`` and runs in CI next to the test suite.

Nothing in this package is imported by the library at runtime; it exists so
the invariants the library documents stay true as the code grows.
"""

from repro.devtools.lint import Finding, lint_paths, main

__all__ = ["Finding", "lint_paths", "main"]
