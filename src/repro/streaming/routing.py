"""Pluggable shard-routing policies.

PR 1's :class:`~repro.streaming.ShardedCollector` only knew round-robin.
These routers factor the placement decision out into a small strategy
object shared by the synchronous collector and the asynchronous
:class:`~repro.service.IngestionService`:

* :class:`RoundRobinRouter` — the stateless-load-balancer schedule; batch
  ``i`` goes to shard ``i mod K``.
* :class:`HashRouter` — hash-by-user: batches submitted with a routing
  ``key`` (user id, device id, tenant...) always land on the same shard, so
  per-key state stays shard-local.  The hash is deterministic across
  processes (CRC32, not Python's salted ``hash``).
* :class:`LeastLoadedRouter` — load-aware: each batch goes to the shard
  with the fewest users routed so far (queued *or* absorbed), breaking ties
  by lowest index.  This keeps shards balanced under skewed batch sizes.

Because accumulator merging is exact, routing policy — like shard count —
is invisible to accuracy; it only shapes throughput and operational
properties (locality, balance).  All routers expose ``state_dict`` /
``load_state_dict`` so collector checkpoints capture them and a restored
run continues with the identical schedule.
"""

from __future__ import annotations

import abc
import zlib
from typing import Any, Dict, List, Optional, Union

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = [
    "HashRouter",
    "LeastLoadedRouter",
    "RoundRobinRouter",
    "ShardRouter",
    "make_router",
    "register_router",
]

RoutingKey = Union[None, int, str, bytes]


class ShardRouter(abc.ABC):
    """Strategy deciding which shard absorbs the next batch.

    A router is bound to a shard count once (:meth:`bind`) and then asked to
    :meth:`route` every batch; the owner reports the outcome back through
    :meth:`observe` so load-aware policies can track placement.
    """

    #: Machine-readable policy name (used by specs and checkpoints).
    name: str = "abstract"

    def __init__(self) -> None:
        self._n_shards: Optional[int] = None

    @property
    def n_shards(self) -> int:
        if self._n_shards is None:
            raise ConfigurationError("router is not bound to a collector yet")
        return self._n_shards

    def bind(self, n_shards: int) -> "ShardRouter":
        """Attach the router to a collector with ``n_shards`` shards."""
        if not isinstance(n_shards, (int, np.integer)) or n_shards < 1:
            raise ConfigurationError(
                f"n_shards must be a positive integer, got {n_shards!r}"
            )
        if self._n_shards is not None and self._n_shards != int(n_shards):
            raise ConfigurationError(
                f"router already bound to {self._n_shards} shards, "
                f"cannot rebind to {n_shards}"
            )
        self._n_shards = int(n_shards)
        return self

    def resize(self, n_shards: int) -> "ShardRouter":
        """Rebind to a new shard count (the autoscaling hook).

        Unlike :meth:`bind` — which refuses to change an established count,
        protecting against accidental sharing of one router across two
        collectors — ``resize`` is the collector-driven path used when the
        shard set legitimately grows or shrinks.  Policies with per-shard
        state must override and reshape it; before shrinking, the owner is
        expected to :meth:`fold` each removed shard into a survivor.
        """
        if not isinstance(n_shards, (int, np.integer)) or n_shards < 1:
            raise ConfigurationError(
                f"n_shards must be a positive integer, got {n_shards!r}"
            )
        self._n_shards = int(n_shards)
        return self

    @abc.abstractmethod
    def route(self, n_items: int, key: RoutingKey = None) -> int:
        """Pick the shard index for a batch of ``n_items`` users."""

    def observe(self, shard: int, n_items: int) -> None:
        """Feedback hook: ``n_items`` users were routed to ``shard``."""

    def release(self, shard: int, n_items: int) -> None:
        """Undo one :meth:`observe`: a routed batch was never absorbed.

        The non-blocking ingestion path routes *before* attempting to
        enqueue; when the target queue is full the batch is rejected (HTTP
        503) and its load accounting must be handed back so the signal keeps
        meaning "users actually queued or absorbed".  Stateless policies
        need nothing.
        """

    def fold(self, source: int, target: int) -> None:
        """Move per-shard state of ``source`` into ``target`` (pre-shrink).

        Called once per removed shard, while the router is still bound to
        the old (larger) count; :meth:`resize` follows.  Stateless policies
        need nothing.
        """

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """JSON-serialisable mutable state (empty for stateless policies)."""
        return {}

    def load_state_dict(self, state: Dict[str, Any]) -> "ShardRouter":
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n_shards={self._n_shards})"


class RoundRobinRouter(ShardRouter):
    """Cycle through the shards in index order, one batch each."""

    name = "round-robin"

    def __init__(self) -> None:
        super().__init__()
        self._cursor = 0

    def route(self, n_items: int, key: RoutingKey = None) -> int:
        shard = self._cursor % self.n_shards
        self._cursor = (self._cursor + 1) % self.n_shards
        return shard

    def resize(self, n_shards: int) -> "RoundRobinRouter":
        super().resize(n_shards)
        self._cursor %= self.n_shards
        return self

    def state_dict(self) -> Dict[str, Any]:
        return {"cursor": int(self._cursor)}

    def load_state_dict(self, state: Dict[str, Any]) -> "RoundRobinRouter":
        self._cursor = int(state.get("cursor", 0))
        return self


def _stable_hash(key: Union[int, str, bytes]) -> int:
    """Deterministic (cross-process, cross-run) hash of a routing key."""
    if isinstance(key, (int, np.integer)):
        value = int(key)
        # Width follows the value so arbitrarily large ids (e.g. 128-bit
        # UUID ints) hash instead of overflowing a fixed-size conversion.
        width = max(1, (value.bit_length() + 8) // 8)
        payload = value.to_bytes(width, "little", signed=True)
    elif isinstance(key, str):
        payload = key.encode("utf-8")
    elif isinstance(key, bytes):
        payload = key
    else:
        raise ConfigurationError(
            f"routing keys must be int, str or bytes, got {type(key).__name__}"
        )
    return zlib.crc32(payload) & 0xFFFFFFFF


class HashRouter(ShardRouter):
    """Sticky placement: the same key always routes to the same shard.

    Batches without a key fall back to a deterministic counter-based key so
    mixed workloads still spread across shards.
    """

    name = "hash"

    def __init__(self) -> None:
        super().__init__()
        self._keyless = 0

    def route(self, n_items: int, key: RoutingKey = None) -> int:
        if key is None:
            key = self._keyless
            self._keyless += 1
        return _stable_hash(key) % self.n_shards

    def state_dict(self) -> Dict[str, Any]:
        return {"keyless": int(self._keyless)}

    def load_state_dict(self, state: Dict[str, Any]) -> "HashRouter":
        self._keyless = int(state.get("keyless", 0))
        return self


class LeastLoadedRouter(ShardRouter):
    """Send each batch to the shard with the fewest users routed so far."""

    name = "least-loaded"

    def __init__(self) -> None:
        super().__init__()
        self._loads: Optional[List[int]] = None

    def bind(self, n_shards: int) -> "LeastLoadedRouter":
        super().bind(n_shards)
        if self._loads is None:
            self._loads = [0] * self.n_shards
        return self

    @property
    def loads(self) -> List[int]:
        """Users routed to each shard so far."""
        return list(self._loads or [])

    def route(self, n_items: int, key: RoutingKey = None) -> int:
        return int(np.argmin(self._loads))

    def observe(self, shard: int, n_items: int) -> None:
        self._loads[int(shard)] += int(n_items)

    def release(self, shard: int, n_items: int) -> None:
        self._loads[int(shard)] = max(0, self._loads[int(shard)] - int(n_items))

    def fold(self, source: int, target: int) -> None:
        source, target = int(source), int(target)
        if source == target:
            raise ConfigurationError("cannot fold a shard's load into itself")
        self._loads[target] += self._loads[source]
        self._loads[source] = 0

    def resize(self, n_shards: int) -> "LeastLoadedRouter":
        super().resize(n_shards)
        loads = self._loads or []
        if len(loads) < self.n_shards:
            loads = loads + [0] * (self.n_shards - len(loads))
        else:
            # Shrink drops the tail; removed shards are expected to have been
            # folded into survivors already, so the dropped entries are zero.
            loads = loads[: self.n_shards]
        self._loads = loads
        return self

    def state_dict(self) -> Dict[str, Any]:
        return {"loads": [int(load) for load in (self._loads or [])]}

    def load_state_dict(self, state: Dict[str, Any]) -> "LeastLoadedRouter":
        loads = [int(load) for load in state.get("loads", [])]
        if self._n_shards is not None and len(loads) != self._n_shards:
            raise ConfigurationError(
                f"router state holds {len(loads)} shard loads, expected {self._n_shards}"
            )
        self._loads = loads
        return self


_ROUTERS = {
    RoundRobinRouter.name: RoundRobinRouter,
    "round_robin": RoundRobinRouter,
    "rr": RoundRobinRouter,
    HashRouter.name: HashRouter,
    LeastLoadedRouter.name: LeastLoadedRouter,
    "least_loaded": LeastLoadedRouter,
}


def register_router(router_class: type) -> type:
    """Register a custom router class under its ``name`` attribute.

    May be used as a class decorator.  Registration is what makes a custom
    policy *checkpointable*: collector checkpoints store only the router's
    name plus its ``state_dict``, so restore needs to resolve the name back
    to a class.
    """
    name = getattr(router_class, "name", None)
    if not name or not isinstance(name, str) or name == ShardRouter.name:
        raise ConfigurationError(
            "router classes must define a non-empty `name` (not 'abstract')"
        )
    if not (isinstance(router_class, type) and issubclass(router_class, ShardRouter)):
        raise ConfigurationError("register_router expects a ShardRouter subclass")
    _ROUTERS[name] = router_class
    return router_class


def is_registered_router(router: ShardRouter) -> bool:
    """Whether ``router``'s name resolves back to its class on restore."""
    return _ROUTERS.get(router.name) is type(router)


def make_router(router: Union[None, str, ShardRouter]) -> ShardRouter:
    """Coerce a router spec into a fresh :class:`ShardRouter` instance.

    ``None`` means round-robin (the historical default); strings name a
    policy (``"round-robin"``, ``"hash"``, ``"least-loaded"``); instances
    pass through, letting callers plug custom policies.
    """
    if router is None:
        return RoundRobinRouter()
    if isinstance(router, ShardRouter):
        return router
    key = str(router).strip().lower()
    if key not in _ROUTERS:
        raise ConfigurationError(
            f"unknown router policy {router!r}; available: "
            f"{sorted(set(cls.name for cls in _ROUTERS.values()))}"
        )
    return _ROUTERS[key]()
