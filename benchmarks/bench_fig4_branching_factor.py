"""Figure 4 — impact of the branching factor B and range length r.

Regenerates the grid of Figure 4: for each domain size and query length,
the mean squared error of TreeOUE[CI] / TreeHRR[CI] across branching
factors, with flat OUE (the paper plots it as B = D) and HaarHRR (plotted
as B = 2) as reference lines, and TreeOLH[CI] included for the small
domain only (its decoding cost is O(N D), exactly as the paper notes).

Laptop-scale substitution: domains 2^8 and 2^12 stand in for the paper's
2^8 .. 2^22 ladder, with N = 2^16 users (see EXPERIMENTS.md).
"""

from __future__ import annotations


import pytest

from repro.experiments.figures import figure4_branching_factor
from repro.experiments.reporting import format_table


def _print_figure4(domain_size: int, results) -> None:
    print(f"\n=== Figure 4 | D = {domain_size} | MSE x 1000 ===")
    for length, cells in sorted(results.items()):
        by_spec = {cell.mechanism: cell.scaled_mse for cell in cells}
        rows = [[spec, value] for spec, value in sorted(by_spec.items())]
        print(f"\n-- query length r = {length} --")
        print(format_table(["method", "mse x1000"], rows))


@pytest.mark.benchmark(group="figure4")
def test_figure4_small_domain(run_once, bench_config):
    """D = 2^8 with OLH included (the paper's 'small domain' panel)."""
    domain = 1 << 8
    results = run_once(
        figure4_branching_factor,
        bench_config,
        domain,
        query_lengths=(1, 16, 64, 128),
        branching_factors=(2, 4, 8, 16),
        include_olh=True,
    )
    _print_figure4(domain, results)

    # Qualitative checks from the paper:
    by_length = {
        length: {cell.mechanism: cell.mse_mean for cell in cells}
        for length, cells in results.items()
    }
    # (1) For point queries the flat method is competitive (best or near it).
    point = by_length[1]
    assert point["flat_oue"] <= 2.0 * min(point.values())
    # (2) For long ranges the flat method is clearly beaten.
    long_range = by_length[128]
    best_tree = min(v for k, v in long_range.items() if k != "flat_oue")
    assert best_tree < long_range["flat_oue"]
    # (3) Consistency helps TreeOUE on long ranges.
    assert long_range["hhc_4_oue"] <= long_range["hh_4_oue"] * 1.2


@pytest.mark.benchmark(group="figure4")
def test_figure4_medium_domain(run_once, bench_config):
    """D = 2^12 panel (OLH omitted for cost, like the paper's larger Ds)."""
    domain = 1 << 12
    results = run_once(
        figure4_branching_factor,
        bench_config,
        domain,
        query_lengths=(1, 64, 1024, 2048),
        branching_factors=(2, 4, 8, 16),
        include_olh=False,
    )
    _print_figure4(domain, results)

    by_length = {
        length: {cell.mechanism: cell.mse_mean for cell in cells}
        for length, cells in results.items()
    }
    long_range = by_length[2048]
    hierarchical = min(v for k, v in long_range.items() if k.startswith(("hh", "haar")))
    # The paper: "at least 16 times more accurate than the flat method" for
    # long queries on large domains; require a factor of 4 at this scale.
    assert hierarchical * 4 < long_range["flat_oue"]
    # HaarHRR is never the worst of the non-flat methods for long ranges.
    non_flat = {k: v for k, v in long_range.items() if k != "flat_oue"}
    assert non_flat["haar"] < max(non_flat.values()) or len(non_flat) == 1
