"""Setup shim.

The project is fully described by ``pyproject.toml``; this file exists so
that editable installs (``pip install -e .``) work on minimal environments
that lack the ``wheel`` package needed by the PEP 660 build path.
"""

from setuptools import setup

setup()
