"""B-adic interval decomposition.

Fact 2 of the paper: an interval is *B-adic* if it has the form
``[k * B^j, (k + 1) * B^j - 1]`` — its length is a power of ``B`` and it
starts at an integer multiple of that length.  Fact 3: any range of length
``r`` inside ``[0, D)`` decomposes into at most ``(B - 1)(2 log_B r + 1)``
disjoint B-adic intervals.

The hierarchical histogram mechanisms organise the domain as a complete
B-ary tree whose nodes are exactly the B-adic intervals; a range query is
answered by adding the estimated weights of the intervals returned by
:func:`badic_decompose`.  The decomposition here is the greedy canonical
one: at each tree level, absorb maximal runs of aligned blocks from both
ends of the remaining range.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.exceptions import ConfigurationError, InvalidQueryError

__all__ = [
    "BAdicInterval",
    "is_badic_interval",
    "badic_decompose",
    "badic_node_count_bound",
]


@dataclass(frozen=True)
class BAdicInterval:
    """A single B-adic interval ``[start, end]`` at a given tree level.

    Attributes
    ----------
    start, end:
        Inclusive item bounds of the interval.
    level:
        Height of the interval in the B-ary tree: level ``0`` intervals are
        single items, level ``j`` intervals have length ``B^j``.
    index:
        Position of the interval among the level-``j`` blocks, i.e.
        ``start == index * B^level``.
    """

    start: int
    end: int
    level: int
    index: int

    @property
    def length(self) -> int:
        return self.end - self.start + 1


def _validate_branching(branching: int) -> int:
    if not isinstance(branching, int) or branching < 2:
        raise ConfigurationError(
            f"branching factor must be an integer >= 2, got {branching!r}"
        )
    return branching


def is_badic_interval(start: int, end: int, branching: int) -> bool:
    """Return ``True`` if ``[start, end]`` is a B-adic interval (Fact 2)."""
    branching = _validate_branching(branching)
    if start < 0 or end < start:
        return False
    length = end - start + 1
    level = round(math.log(length, branching))
    if branching**level != length:
        return False
    return start % length == 0


def badic_decompose(
    start: int, end: int, branching: int, domain_size: int | None = None
) -> List[BAdicInterval]:
    """Decompose ``[start, end]`` into disjoint maximal B-adic intervals.

    Parameters
    ----------
    start, end:
        Inclusive bounds of the query range; ``0 <= start <= end``.
    branching:
        The base ``B >= 2`` of the decomposition.
    domain_size:
        Optional domain bound used purely for validation of the query.

    Returns
    -------
    list of :class:`BAdicInterval`
        Disjoint intervals whose union is exactly ``[start, end]``, ordered
        left to right.  For example with ``B = 2`` the range ``[2, 22]``
        decomposes into ``[2,3] [4,7] [8,15] [16,19] [20,21] [22,22]`` — the
        worked example after Fact 3 in the paper.
    """
    branching = _validate_branching(branching)
    if start < 0 or end < start:
        raise InvalidQueryError(f"invalid range [{start}, {end}]")
    if domain_size is not None and end >= domain_size:
        raise InvalidQueryError(
            f"range [{start}, {end}] exceeds domain of size {domain_size}"
        )

    pieces_left: List[BAdicInterval] = []
    pieces_right: List[BAdicInterval] = []
    lo, hi = start, end
    level = 0
    block = 1
    while lo <= hi:
        next_block = block * branching
        # Peel blocks of size `block` off the left end until `lo` is aligned
        # to the next coarser granularity (or the range is exhausted).
        while lo <= hi and lo % next_block != 0:
            if lo + block - 1 > hi:
                break
            pieces_left.append(
                BAdicInterval(start=lo, end=lo + block - 1, level=level, index=lo // block)
            )
            lo += block
        # Symmetrically peel blocks off the right end.
        while lo <= hi and (hi + 1) % next_block != 0:
            if hi - block + 1 < lo:
                break
            pieces_right.append(
                BAdicInterval(
                    start=hi - block + 1, end=hi, level=level, index=(hi - block + 1) // block
                )
            )
            hi -= block
        if lo > hi:
            break
        if lo + block - 1 > hi:
            # The remaining stretch is shorter than one block of the next
            # level; finish it off with blocks of the current size.
            while lo <= hi:
                pieces_left.append(
                    BAdicInterval(
                        start=lo, end=lo + block - 1, level=level, index=lo // block
                    )
                )
                lo += block
            break
        level += 1
        block = next_block
    return pieces_left + list(reversed(pieces_right))


def badic_node_count_bound(range_length: int, branching: int) -> int:
    """Upper bound on the number of intervals returned by the decomposition.

    Fact 3 of the paper: ``(B - 1) (2 log_B r + 1)`` intervals suffice for a
    range of length ``r``.
    """
    branching = _validate_branching(branching)
    if range_length < 1:
        raise InvalidQueryError(f"range length must be >= 1, got {range_length!r}")
    log_term = math.log(range_length, branching) if range_length > 1 else 0.0
    return int(math.ceil((branching - 1) * (2 * log_term + 1)))
