"""Property-based tests for the frequency oracles.

Two invariants are checked across the whole (epsilon, domain, oracle) space:

* the perturbation probabilities used by every oracle satisfy the
  ``epsilon``-LDP constraint they advertise;
* the aggregator's estimate is (approximately) unbiased: averaged over many
  simulated aggregations the estimated frequencies converge to the truth.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frequency_oracles.hadamard import HadamardRandomizedResponse
from repro.frequency_oracles.local_hashing import OptimalLocalHashing
from repro.frequency_oracles.randomized_response import GeneralizedRandomizedResponse
from repro.frequency_oracles.unary import OptimizedUnaryEncoding, SymmetricUnaryEncoding
from repro.privacy.mechanisms import ldp_guarantee_epsilon

epsilons = st.floats(min_value=0.1, max_value=3.0, allow_nan=False)
domains = st.integers(min_value=2, max_value=64)


@given(epsilon=epsilons, domain=domains)
@settings(max_examples=100, deadline=None)
def test_oue_bits_satisfy_ldp(epsilon, domain):
    oracle = OptimizedUnaryEncoding(epsilon, domain)
    # Changing the input flips two bits (one 1->0 and one 0->1); the
    # likelihood ratio of the pair is (p / q) * ((1 - q) / (1 - p)).
    ratio = (oracle.p / oracle.q) * ((1.0 - oracle.q) / (1.0 - oracle.p))
    assert np.log(ratio) <= epsilon + 1e-9


@given(epsilon=epsilons, domain=domains)
@settings(max_examples=100, deadline=None)
def test_sue_bits_satisfy_ldp(epsilon, domain):
    oracle = SymmetricUnaryEncoding(epsilon, domain)
    per_bit = ldp_guarantee_epsilon(oracle.p, oracle.q, binary_output=True)
    assert 2 * per_bit <= epsilon + 1e-9


@given(epsilon=epsilons, domain=domains)
@settings(max_examples=100, deadline=None)
def test_grr_satisfies_ldp(epsilon, domain):
    oracle = GeneralizedRandomizedResponse(epsilon, domain)
    assert np.log(oracle.p / oracle.q) <= epsilon + 1e-9


@given(epsilon=epsilons, domain=domains)
@settings(max_examples=100, deadline=None)
def test_olh_reported_symbol_satisfies_ldp(epsilon, domain):
    oracle = OptimalLocalHashing(epsilon, domain)
    # GRR over the hashed domain [g]: true symbol with p, others with
    # (1 - p) / (g - 1) each.
    wrong = (1.0 - oracle.p) / (oracle.hash_range - 1)
    assert np.log(oracle.p / wrong) <= epsilon + 1e-9


@given(epsilon=epsilons, domain=domains)
@settings(max_examples=100, deadline=None)
def test_hrr_bit_satisfies_ldp(epsilon, domain):
    oracle = HadamardRandomizedResponse(epsilon, domain)
    p = oracle.keep_probability
    assert ldp_guarantee_epsilon(p, 1.0 - p, binary_output=True) <= epsilon + 1e-9


@pytest.mark.parametrize(
    "oracle_class", [OptimizedUnaryEncoding, HadamardRandomizedResponse, OptimalLocalHashing]
)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=10, deadline=None)
def test_simulated_estimates_are_unbiased(oracle_class, seed):
    rng = np.random.default_rng(seed)
    domain = 8
    oracle = oracle_class(epsilon=2.0, domain_size=domain)
    true = np.array([0.35, 0.2, 0.15, 0.1, 0.08, 0.06, 0.04, 0.02])
    counts = (true * 20_000).astype(int)
    estimates = np.mean(
        [oracle.simulate_aggregate(counts, rng) for _ in range(25)], axis=0
    )
    np.testing.assert_allclose(estimates, counts / counts.sum(), atol=0.03)


@given(
    epsilon=st.floats(min_value=0.3, max_value=2.5),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=15, deadline=None)
def test_estimates_sum_to_approximately_one(epsilon, seed):
    rng = np.random.default_rng(seed)
    domain = 32
    n_users = 50_000
    oracle = OptimizedUnaryEncoding(epsilon, domain)
    counts = rng.multinomial(n_users, np.full(domain, 1 / domain))
    estimates = oracle.simulate_aggregate(counts, rng)
    # The sum of the 32 (nearly independent) unbiased estimates has standard
    # deviation ~sqrt(domain * V_F); a fixed tolerance is far too tight at
    # the low-epsilon end of the strategy, so bound at six sigma instead.
    sigma = np.sqrt(domain * oracle.theoretical_variance(n_users))
    assert estimates.sum() == pytest.approx(1.0, abs=6 * sigma)


@given(
    epsilon=epsilons,
    domain=domains,
    n_users=st.integers(min_value=0, max_value=200),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=50, deadline=None)
def test_packed_and_dense_unary_payloads_decode_identically(
    epsilon, domain, n_users, seed
):
    """The packed report layout is a pure re-encoding: same draws, same sums."""
    for oracle_class in (OptimizedUnaryEncoding, SymmetricUnaryEncoding):
        oracle = oracle_class(epsilon, domain)
        values = np.random.default_rng(seed).integers(0, domain, size=n_users)
        packed = oracle.encode_batch(values, np.random.default_rng(seed), packed=True)
        dense = oracle.encode_batch(values, np.random.default_rng(seed), packed=False)
        from_packed = oracle.accumulator().add(packed).estimate()
        from_dense = oracle.accumulator().add(dense).estimate()
        np.testing.assert_array_equal(from_packed, from_dense)
