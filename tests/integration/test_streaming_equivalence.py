"""Distributional equivalence of streaming collection with one-shot fits.

The accumulator design promises that *how* a population is collected —
one shot, in batches, or across shards — is invisible to the estimates'
distribution.  These tests check that promise statistically with seeded
repetitions: matching means (unbiasedness towards the true frequencies)
and matching variances between the collection styles.
"""

import numpy as np
import pytest

from repro.core.factory import mechanism_from_spec
from repro.data.synthetic import cauchy_probabilities, expected_counts, sample_items
from repro.data.workloads import random_range_queries
from repro.streaming import ShardedCollector

DOMAIN = 128
N_USERS = 40_000
EPSILON = 1.5


@pytest.fixture(scope="module")
def population():
    items = sample_items(cauchy_probabilities(DOMAIN), N_USERS, random_state=11)
    counts = np.bincount(items, minlength=DOMAIN)
    return items, counts


def _item_of_interest(counts):
    return int(np.argmax(counts))


class TestPartialFitDistribution:
    @pytest.mark.parametrize("spec", ["flat_oue", "hhc_4", "haar"])
    def test_mean_and_variance_match_one_shot(self, spec, population):
        """Seeded repetitions: batched fits track one-shot mean and spread."""
        items, counts = population
        item = _item_of_interest(counts)
        truth = counts[item] / counts.sum()
        repetitions = 40
        one_shot, batched = [], []
        for repetition in range(repetitions):
            mechanism = mechanism_from_spec(spec, epsilon=EPSILON, domain_size=DOMAIN)
            mechanism.fit_items(items, random_state=1000 + repetition)
            one_shot.append(mechanism.estimate_frequencies()[item])

            mechanism = mechanism_from_spec(spec, epsilon=EPSILON, domain_size=DOMAIN)
            stream = np.random.default_rng(5000 + repetition)
            for batch in np.array_split(items, 6):
                mechanism.partial_fit(batch, random_state=stream)
            batched.append(mechanism.estimate_frequencies()[item])
        one_shot, batched = np.asarray(one_shot), np.asarray(batched)

        # Unbiasedness: both collection styles centre on the truth.
        standard_error = one_shot.std() / np.sqrt(repetitions)
        assert abs(one_shot.mean() - truth) < 5 * standard_error + 1e-4
        assert abs(batched.mean() - truth) < 5 * standard_error + 1e-4
        # Equal spread: the variance ratio stays within sampling noise.
        ratio = batched.var() / max(one_shot.var(), 1e-12)
        assert 0.35 < ratio < 1 / 0.35

    def test_aggregate_mode_thinning_is_additive(self, population):
        """HH level partitioning over batches still covers every user once."""
        items, _ = population
        mechanism = mechanism_from_spec("hhc_4", epsilon=EPSILON, domain_size=DOMAIN)
        stream = np.random.default_rng(3)
        for batch in np.array_split(items, 5):
            mechanism.partial_fit(batch, random_state=stream)
        assert int(mechanism.level_user_counts.sum()) == items.size


class TestShardCountInvariance:
    def test_estimates_match_one_shot_across_shard_counts(self, population):
        """Fixed seed per configuration: workload MSE does not grow with K."""
        items, counts = population
        workload = random_range_queries(DOMAIN, 500, random_state=17)
        truth = workload.true_answers(counts)

        def workload_mse(mechanism):
            return float(np.mean((mechanism.answer_workload(workload) - truth) ** 2))

        repetitions = 12
        errors = {0: [], 1: [], 4: [], 8: []}
        for repetition in range(repetitions):
            mechanism = mechanism_from_spec("hhc_4", epsilon=EPSILON, domain_size=DOMAIN)
            mechanism.fit_items(items, random_state=300 + repetition)
            errors[0].append(workload_mse(mechanism))
            for n_shards in (1, 4, 8):
                collector = ShardedCollector(
                    "hhc_4",
                    epsilon=EPSILON,
                    domain_size=DOMAIN,
                    n_shards=n_shards,
                    random_state=700 + 13 * repetition + n_shards,
                )
                collector.extend(np.array_split(items, 2 * n_shards))
                errors[n_shards].append(workload_mse(collector.reduce()))

        means = {key: float(np.mean(value)) for key, value in errors.items()}
        baseline = means[0]
        for n_shards in (1, 4, 8):
            assert means[n_shards] < 2.0 * baseline
            assert means[n_shards] > 0.5 * baseline

    def test_merged_equals_weighted_shards_exactly(self, population):
        """The reduce step is algebra, not estimation: exact linearity."""
        items, _ = population
        collector = ShardedCollector(
            "flat_oue", epsilon=EPSILON, domain_size=DOMAIN, n_shards=3, random_state=5
        )
        collector.extend(np.array_split(items, 6))
        merged = collector.reduce()
        total = sum(shard.n_users for shard in collector.shards)
        expected = (
            sum(
                shard.n_users * shard.estimate_frequencies()
                for shard in collector.shards
            )
            / total
        )
        np.testing.assert_allclose(merged.estimate_frequencies(), expected, atol=1e-12)

    def test_deterministic_counts_stay_deterministic(self):
        """expected_counts populations keep exact user counts through shards."""
        counts = expected_counts(cauchy_probabilities(DOMAIN), N_USERS)
        items = np.repeat(np.arange(DOMAIN), counts)
        collector = ShardedCollector(
            "haar", epsilon=EPSILON, domain_size=DOMAIN, n_shards=4, random_state=2
        )
        collector.extend(np.array_split(items, 8))
        assert collector.n_users == int(counts.sum())
        assert collector.reduce().n_users == int(counts.sum())
