"""Random number generator plumbing.

Every stochastic entry point in the library accepts a ``random_state``
argument that may be ``None`` (fresh entropy), an ``int`` seed, or an
existing :class:`numpy.random.Generator`.  Centralising the conversion in
:func:`as_generator` keeps experiments reproducible from a single seed and
avoids the legacy ``numpy.random.RandomState`` global state.
"""

from __future__ import annotations

from typing import Iterable, List, Union

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["RandomState", "as_generator", "as_seed_sequence", "spawn_generators"]

#: Anything accepted as a source of randomness by the library.
RandomState = Union[None, int, np.integer, np.random.Generator, np.random.SeedSequence]


def as_generator(random_state: RandomState = None) -> np.random.Generator:
    """Coerce ``random_state`` into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged (so callers can share
    a stream); anything else seeds a fresh PCG64 generator.
    """
    if isinstance(random_state, np.random.Generator):
        return random_state
    if isinstance(random_state, np.random.SeedSequence):
        return np.random.default_rng(random_state)
    if random_state is None:
        return np.random.default_rng()
    return np.random.default_rng(int(random_state))


def as_seed_sequence(random_state: RandomState) -> np.random.SeedSequence:
    """Coerce ``random_state`` into a spawnable :class:`numpy.random.SeedSequence`.

    The returned sequence is the *parent* stream factory: ``seq.spawn(k)``
    children are deterministic in spawn order, so a holder that keeps the
    sequence around can mint additional independent streams later and still
    match a run that spawned them all up front (numpy's ``SeedSequence``
    tracks ``n_children_spawned``).  This is what lets the sharded collector
    grow its shard set without perturbing existing streams.
    """
    if isinstance(random_state, np.random.SeedSequence):
        return random_state
    if isinstance(random_state, np.random.Generator):
        # Derive a seed sequence from the generator's own stream so that the
        # spawned generators remain reproducible given the parent state.
        return np.random.SeedSequence(
            random_state.integers(0, 2**63 - 1, size=4).tolist()
        )
    if random_state is None:
        return np.random.SeedSequence()
    return np.random.SeedSequence(int(random_state))


def spawn_generators(random_state: RandomState, count: int) -> List[np.random.Generator]:
    """Derive ``count`` statistically independent generators.

    Used by the experiment runner to give each repetition its own stream so
    that repetitions can be reordered or parallelised without changing
    results.
    """
    if count < 0:
        raise ConfigurationError(f"count must be non-negative, got {count!r}")
    seq = as_seed_sequence(random_state)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def iter_generators(random_state: RandomState, count: int) -> Iterable[np.random.Generator]:
    """Generator-yielding variant of :func:`spawn_generators`."""
    yield from spawn_generators(random_state, count)
