"""Abstract interface shared by every range-query mechanism.

A mechanism's lifecycle has two phases:

1. **Collection** — the private inputs of ``N`` users are turned into noisy
   aggregate state.  Two entry points exist: :meth:`fit_items` (an array of
   individual user items, supporting both ``per_user`` and ``aggregate``
   simulation) and :meth:`fit_counts` (exact per-item counts, ``aggregate``
   simulation only).
2. **Query answering** — once fitted, :meth:`answer_range`,
   :meth:`answer_prefix`, :meth:`estimate_frequencies`, :meth:`estimate_cdf`
   and :meth:`quantile` are available.  All answers are *fractions of the
   population*, matching the problem definition in Section 4.1 of the paper.

Subclasses implement :meth:`_collect` (store aggregate state) and
:meth:`_answer_range` (answer a single validated range query); the base
class provides validation, workload evaluation and the quantile search.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence

import numpy as np

from repro.data.workloads import RangeWorkload
from repro.exceptions import (
    ConfigurationError,
    InvalidDomainError,
    InvalidQueryError,
    NotFittedError,
)
from repro.privacy.budget import PrivacyBudget
from repro.privacy.randomness import RandomState, as_generator

__all__ = ["RangeQueryMechanism", "SIMULATION_MODES"]

#: Supported simulation modes for the collection phase.
SIMULATION_MODES = ("per_user", "aggregate")


class RangeQueryMechanism(abc.ABC):
    """Base class of all LDP range-query mechanisms.

    Parameters
    ----------
    epsilon:
        Privacy budget each user's report must satisfy.
    domain_size:
        Number of items ``D`` of the (one-dimensional, discrete) domain.
    name:
        Optional human-readable identifier used in experiment reports.
    """

    def __init__(self, epsilon: float, domain_size: int, name: Optional[str] = None) -> None:
        self._budget = PrivacyBudget(epsilon)
        if not isinstance(domain_size, (int, np.integer)) or domain_size < 1:
            raise InvalidDomainError(
                f"domain size must be a positive integer, got {domain_size!r}"
            )
        self._domain_size = int(domain_size)
        self._n_users: Optional[int] = None
        self._name = name

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    @property
    def epsilon(self) -> float:
        """Per-report privacy budget."""
        return self._budget.epsilon

    @property
    def domain_size(self) -> int:
        """Number of items ``D``."""
        return self._domain_size

    @property
    def name(self) -> str:
        """Identifier used in reports (defaults to the class name)."""
        return self._name or type(self).__name__

    @property
    def n_users(self) -> Optional[int]:
        """Population size seen during collection (``None`` before fitting)."""
        return self._n_users

    @property
    def is_fitted(self) -> bool:
        """Whether the collection phase has run."""
        return self._n_users is not None

    # ------------------------------------------------------------------
    # Collection phase
    # ------------------------------------------------------------------
    def fit_items(
        self,
        items: np.ndarray,
        random_state: RandomState = None,
        mode: str = "aggregate",
    ) -> "RangeQueryMechanism":
        """Collect the population given each user's private item.

        Parameters
        ----------
        items:
            Integer array with one entry per user, each in ``[0, D)``.
        random_state:
            Seed or generator driving both the protocol randomness and any
            simulation sampling.
        mode:
            ``"per_user"`` runs the actual local protocol for every user;
            ``"aggregate"`` samples the aggregator's view directly (much
            faster, statistically equivalent — see the oracle docstrings).
        """
        items = np.asarray(items)
        if items.ndim != 1:
            raise InvalidQueryError("items must be a one-dimensional array")
        if items.size and (items.min() < 0 or items.max() >= self._domain_size):
            raise InvalidQueryError(f"items must be in [0, {self._domain_size})")
        self._check_mode(mode)
        rng = as_generator(random_state)
        counts = np.bincount(items.astype(np.int64), minlength=self._domain_size)
        self._collect(items=items.astype(np.int64), counts=counts, rng=rng, mode=mode)
        self._n_users = int(items.shape[0])
        return self

    def fit_counts(
        self,
        counts: np.ndarray,
        random_state: RandomState = None,
        mode: str = "aggregate",
    ) -> "RangeQueryMechanism":
        """Collect the population given exact per-item counts.

        ``mode="per_user"`` is also accepted: the counts are expanded into an
        explicit item vector first (costs ``O(N)`` memory).
        """
        counts = np.asarray(counts, dtype=np.int64)
        if counts.ndim != 1 or counts.shape[0] != self._domain_size:
            raise InvalidDomainError(
                f"expected {self._domain_size} per-item counts, got shape {counts.shape}"
            )
        if np.any(counts < 0):
            raise InvalidQueryError("per-item counts must be non-negative")
        self._check_mode(mode)
        rng = as_generator(random_state)
        items = None
        if mode == "per_user":
            items = np.repeat(np.arange(self._domain_size, dtype=np.int64), counts)
        self._collect(items=items, counts=counts, rng=rng, mode=mode)
        self._n_users = int(counts.sum())
        return self

    @abc.abstractmethod
    def _collect(
        self,
        items: Optional[np.ndarray],
        counts: np.ndarray,
        rng: np.random.Generator,
        mode: str,
    ) -> None:
        """Store the mechanism's aggregate state for the given population.

        ``items`` is guaranteed to be present when ``mode == "per_user"``;
        ``counts`` is always present.
        """

    # ------------------------------------------------------------------
    # Query answering
    # ------------------------------------------------------------------
    def answer_range(self, start: int, end: int) -> float:
        """Estimated fraction of users whose item lies in ``[start, end]``."""
        self._require_fitted()
        start, end = self._check_range(start, end)
        return float(self._answer_range(start, end))

    def answer_ranges(self, queries: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`answer_range` over an ``(n, 2)`` query array."""
        self._require_fitted()
        queries = np.asarray(queries, dtype=np.int64)
        if queries.ndim != 2 or queries.shape[1] != 2:
            raise InvalidQueryError("queries must be an (n, 2) array")
        return np.array(
            [self._answer_range(*self._check_range(int(a), int(b))) for a, b in queries]
        )

    def answer_workload(self, workload: RangeWorkload) -> np.ndarray:
        """Answer every query of a :class:`~repro.data.workloads.RangeWorkload`."""
        if workload.domain_size != self._domain_size:
            raise InvalidQueryError(
                "workload domain does not match the mechanism domain"
            )
        return self.answer_ranges(workload.queries)

    def answer_prefix(self, end: int) -> float:
        """Estimated fraction of users with item ``<= end`` (prefix query)."""
        return self.answer_range(0, end)

    def estimate_frequencies(self) -> np.ndarray:
        """Estimated per-item fractions (point queries for every item).

        The default implementation issues one range query per item;
        subclasses override it with their natural reconstruction.
        """
        self._require_fitted()
        return np.array([self._answer_range(i, i) for i in range(self._domain_size)])

    def estimate_cdf(self) -> np.ndarray:
        """Estimated cumulative distribution ``F(b) = R[0, b]`` for every b."""
        self._require_fitted()
        frequencies = self.estimate_frequencies()
        return np.cumsum(frequencies)

    def quantile(self, phi: float) -> int:
        """Estimate the ``phi``-quantile by binary search over prefix queries.

        This follows Section 4.7: the returned item ``j`` is the smallest
        item whose estimated prefix fraction reaches ``phi``.
        """
        self._require_fitted()
        if not 0.0 <= float(phi) <= 1.0:
            raise InvalidQueryError(f"phi must be in [0, 1], got {phi!r}")
        target = float(phi)
        lo, hi = 0, self._domain_size - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self.answer_prefix(mid) < target:
                lo = mid + 1
            else:
                hi = mid
        return int(lo)

    def quantiles(self, phis: Sequence[float]) -> List[int]:
        """Estimate several quantiles (e.g. the deciles of Section 5.5)."""
        return [self.quantile(phi) for phi in phis]

    @abc.abstractmethod
    def _answer_range(self, start: int, end: int) -> float:
        """Answer a single validated range query (bounds already checked)."""

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise NotFittedError(
                f"{self.name} has not collected any reports yet; call fit_items/fit_counts"
            )

    def _check_range(self, start: int, end: int) -> tuple:
        if not 0 <= start <= end < self._domain_size:
            raise InvalidQueryError(
                f"invalid range [{start}, {end}] for domain of size {self._domain_size}"
            )
        return int(start), int(end)

    @staticmethod
    def _check_mode(mode: str) -> None:
        if mode not in SIMULATION_MODES:
            raise ConfigurationError(
                f"mode must be one of {SIMULATION_MODES}, got {mode!r}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(epsilon={self.epsilon:.4g}, "
            f"domain_size={self.domain_size}, fitted={self.is_fitted})"
        )
