"""Centralized (trusted-aggregator) differential privacy baselines.

The paper's Figure 7 contrasts the *local* wavelet/hierarchical trade-off
with the *centralized* one established by Qardaji et al. [21], where the
wavelet approach (Privelet, Xiao et al. [29]) is roughly 1.9–2.8x worse than
an optimised hierarchical histogram with consistency.  To regenerate that
comparison the three classic centralized mechanisms are implemented here:

* :class:`LaplaceHistogram` — per-item Laplace noise (the flat baseline);
* :class:`CentralHierarchicalHistogram` — hierarchical histogram with the
  privacy budget split across levels and Hay et al. consistency;
* :class:`PriveletWavelet` — Laplace noise added to weighted Haar
  coefficients.

These operate on exact counts held by a trusted aggregator, so their
estimates have variance proportional to ``1/N^2`` (against ``1/N`` in the
local model) — exactly the gap the paper points out.
"""

from repro.centralized.hierarchical import CentralHierarchicalHistogram
from repro.centralized.laplace import LaplaceHistogram, laplace_noise_scale
from repro.centralized.wavelet import PriveletWavelet

__all__ = [
    "LaplaceHistogram",
    "CentralHierarchicalHistogram",
    "PriveletWavelet",
    "laplace_noise_scale",
]
