"""Unit tests for repro.privacy.randomness."""

import numpy as np
import pytest

from repro.privacy.randomness import as_generator, spawn_generators


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_seed_is_deterministic(self):
        a = as_generator(42).integers(0, 1000, size=10)
        b = as_generator(42).integers(0, 1000, size=10)
        np.testing.assert_array_equal(a, b)

    def test_existing_generator_passthrough(self):
        rng = np.random.default_rng(7)
        assert as_generator(rng) is rng

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(3)
        rng = as_generator(seq)
        assert isinstance(rng, np.random.Generator)


class TestSpawnGenerators:
    def test_count_and_types(self):
        generators = spawn_generators(0, 5)
        assert len(generators) == 5
        assert all(isinstance(g, np.random.Generator) for g in generators)

    def test_children_are_independent_streams(self):
        a, b = spawn_generators(123, 2)
        assert not np.array_equal(a.integers(0, 1 << 30, 100), b.integers(0, 1 << 30, 100))

    def test_deterministic_given_seed(self):
        first = [g.integers(0, 1000, 5) for g in spawn_generators(9, 3)]
        second = [g.integers(0, 1000, 5) for g in spawn_generators(9, 3)]
        for x, y in zip(first, second):
            np.testing.assert_array_equal(x, y)

    def test_zero_count(self):
        assert spawn_generators(1, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(1, -1)

    def test_spawn_from_generator(self):
        parent = np.random.default_rng(5)
        children = spawn_generators(parent, 2)
        assert len(children) == 2
