"""Unit tests for repro.analysis.metrics."""

import numpy as np
import pytest

from repro.exceptions import InvalidQueryError
from repro.analysis.metrics import (
    ErrorSummary,
    max_absolute_error,
    mean_absolute_error,
    mean_squared_error,
    quantile_errors,
    summarize_errors,
)


class TestPointwiseMetrics:
    def test_mean_squared_error(self):
        assert mean_squared_error([1.0, 2.0], [1.0, 4.0]) == pytest.approx(2.0)

    def test_mean_absolute_error(self):
        assert mean_absolute_error([0.0, 1.0], [1.0, 1.0]) == pytest.approx(0.5)

    def test_max_absolute_error(self):
        assert max_absolute_error([0.0, 0.0, 0.0], [0.1, -0.5, 0.2]) == pytest.approx(0.5)

    def test_zero_error_for_identical_inputs(self):
        values = np.linspace(0, 1, 11)
        assert mean_squared_error(values, values) == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(InvalidQueryError):
            mean_squared_error([1.0, 2.0], [1.0])

    def test_empty_rejected(self):
        with pytest.raises(InvalidQueryError):
            mean_squared_error([], [])


class TestSummary:
    def test_summary_fields(self):
        summary = summarize_errors([0.0, 0.0], [0.1, 0.3])
        assert isinstance(summary, ErrorSummary)
        assert summary.mse == pytest.approx((0.01 + 0.09) / 2)
        assert summary.mae == pytest.approx(0.2)
        assert summary.max_error == pytest.approx(0.3)
        assert summary.n_queries == 2

    def test_scaled_mse(self):
        summary = summarize_errors([0.0], [0.01])
        assert summary.scaled_mse() == pytest.approx(0.1)


class TestQuantileErrors:
    def test_exact_quantiles_have_zero_error(self):
        counts = np.array([10, 10, 10, 10])
        cdf_items = [0, 1, 3]
        errors = quantile_errors(counts, [0.25, 0.5, 1.0], cdf_items)
        np.testing.assert_array_equal(errors["value_error"], [0, 0, 0])
        np.testing.assert_allclose(errors["quantile_error"], [0.0, 0.0, 0.0])

    def test_value_error_in_item_units(self):
        counts = np.ones(100)
        errors = quantile_errors(counts, [0.5], [60])
        assert errors["value_error"][0] == pytest.approx(11)

    def test_quantile_error_in_probability_units(self):
        counts = np.ones(100)
        errors = quantile_errors(counts, [0.5], [60])
        assert errors["quantile_error"][0] == pytest.approx(0.11)

    def test_validation(self):
        counts = np.ones(10)
        with pytest.raises(InvalidQueryError):
            quantile_errors(counts, [0.5], [0, 1])
        with pytest.raises(InvalidQueryError):
            quantile_errors(counts, [1.5], [0])
        with pytest.raises(InvalidQueryError):
            quantile_errors(counts, [0.5], [10])
        with pytest.raises(InvalidQueryError):
            quantile_errors(np.zeros(10), [0.5], [0])
