"""Cached-vs-uncached and coalesced-vs-serial bit-identity properties.

The answer cache's contract is absolute transparency: a mechanism with the
cache enabled must be observationally indistinguishable — bit-for-bit —
from its uncached twin across any interleaving of writes
(``partial_fit``), shard folds (``merge_from``), snapshot/restore
round-trips and reads, with reads served twice at every step so hits
actually occur.  Invalidation is exercised exactly at the generation
bumps: every write makes the previous generation's entries unreachable,
so the next read must recompute from the fresh estimates, never serve the
stale answer.

The coalescer's contract is the same transparency for execution shape:
any partition of a batched workload across concurrent awaiters must
reproduce the one-shot batched call exactly.
"""

import asyncio

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.factory import mechanism_from_spec
from repro.persist import snapshots
from repro.service import QueryCoalescer

DOMAIN = 64

specs = st.sampled_from(["flat_oue", "hh_4", "hhc_4", "haar", "grid2d_2"])
seeds = st.integers(min_value=0, max_value=2**31 - 1)
# One token per history step: writes, folds and a dirty checkpoint-restore
# interleaved in any order the strategy draws.
histories = st.lists(
    st.sampled_from(["fit", "merge", "restore"]), min_size=1, max_size=5
)


def _make(spec, cache):
    mechanism = mechanism_from_spec(spec, epsilon=1.1, domain_size=DOMAIN)
    return mechanism.set_answer_cache_size(cache)


def _read_all(mechanism, rng_seed):
    """Read every cached surface twice (second pass hits) and concatenate."""
    queries = np.sort(
        np.random.default_rng(rng_seed).integers(
            0, mechanism.domain_size, size=(12, 2)
        ),
        axis=1,
    )
    parts = []
    for _ in range(2):
        parts.append(mechanism.answer_ranges(queries))
        parts.append(np.array([mechanism.answer_range(1, mechanism.domain_size - 2)]))
        parts.append(np.asarray(mechanism.quantiles((0.2, 0.8)), dtype=np.float64))
    return np.concatenate(parts)


def _run_history(spec, seed, history, cache):
    """Replay one scripted interleaving, reading after every single step."""
    target = _make(spec, cache)
    item_domain = getattr(target, "flat_domain_size", target.domain_size)
    rng_items = np.random.default_rng(seed)
    stream = np.random.default_rng(seed + 1)
    outputs = []
    for step, token in enumerate(history):
        if token == "fit":
            generation = target.ingest_generation
            target.partial_fit(
                rng_items.integers(0, item_domain, size=300), stream
            )
            assert target.ingest_generation == generation + 1
        elif token == "merge":
            shard = _make(spec, cache)
            shard.partial_fit(
                rng_items.integers(0, item_domain, size=300), stream
            )
            generation = target.ingest_generation
            target.merge_from(shard)
            assert target.ingest_generation == generation + 1
        else:  # restore: statistics-only round-trip of the dirty mechanism
            target = snapshots.from_bytes(snapshots.to_bytes(target))
            target.set_answer_cache_size(cache)
        if target.n_users:
            # Read between every mutation — the cached twin fills and then
            # must invalidate its entries at the very next generation bump.
            outputs.append(_read_all(target, rng_seed=1000 + step))
    return np.concatenate(outputs) if outputs else np.empty(0)


class TestCachedVsUncachedBitIdentity:
    @given(spec=specs, seed=seeds, history=histories)
    @settings(max_examples=20, deadline=None)
    def test_interleaved_history_is_bit_identical(self, spec, seed, history):
        cached = _run_history(spec, seed, history, cache=64)
        uncached = _run_history(spec, seed, history, cache=0)
        np.testing.assert_array_equal(cached, uncached)

    @given(seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_invalidation_exactly_at_generation_bump(self, seed):
        cached = _make("hhc_4", cache=32)
        uncached = _make("hhc_4", cache=0)
        item_rng = np.random.default_rng(seed)
        batches = [item_rng.integers(0, DOMAIN, size=400) for _ in range(3)]
        queries = np.sort(
            np.random.default_rng(seed + 2).integers(0, DOMAIN, size=(8, 2)), axis=1
        )
        for index, batch in enumerate(batches):
            for twin in (cached, uncached):
                twin.partial_fit(batch, np.random.default_rng(seed + 3 + index))
            before_hits = cached.answer_cache_stats()["hits"]
            first = cached.answer_ranges(queries)
            # Second read is a hit at this generation ...
            np.testing.assert_array_equal(cached.answer_ranges(queries), first)
            assert cached.answer_cache_stats()["hits"] == before_hits + 1
            # ... and bit-identical to the never-cached twin.
            np.testing.assert_array_equal(first, uncached.answer_ranges(queries))


class TestCoalescedVsSerialBitIdentity:
    @given(seed=seeds, parts=st.integers(min_value=1, max_value=6))
    @settings(max_examples=15, deadline=None)
    def test_any_partition_matches_the_one_shot_batch(self, seed, parts):
        mechanism = _make("hhc_4", cache=16)
        mechanism.fit_items(
            np.random.default_rng(seed).integers(0, DOMAIN, size=2000),
            random_state=seed,
        )
        queries = np.sort(
            np.random.default_rng(seed + 1).integers(0, DOMAIN, size=(18, 2)),
            axis=1,
        )
        serial = mechanism.answer_ranges(queries)
        coalescer = QueryCoalescer()

        async def main():
            slices = np.array_split(queries, parts)
            return await asyncio.gather(
                *(coalescer.answer_ranges(mechanism, part) for part in slices)
            )

        coalesced = np.concatenate(asyncio.run(main()))
        np.testing.assert_array_equal(coalesced, serial)

    @given(seed=seeds)
    @settings(max_examples=10, deadline=None)
    def test_coalescing_across_a_write_boundary(self, seed):
        """Writes between drains: each drain's answers match the state the
        mechanism held at that drain, never a stale cached batch."""
        mechanism = _make("grid2d_2", cache=16)
        side = mechanism.domain_size
        rng = np.random.default_rng(seed)
        mechanism.partial_fit_points(
            rng.integers(0, side, size=(1000, 2)), np.random.default_rng(seed + 1)
        )
        boxes = np.sort(
            np.random.default_rng(seed + 2).integers(0, side, size=(6, 2, 2)), axis=2
        ).reshape(6, 4)
        coalescer = QueryCoalescer()

        async def drain():
            return np.concatenate(
                await asyncio.gather(
                    *(
                        coalescer.answer_boxes(mechanism, part)
                        for part in np.array_split(boxes, 2)
                    )
                )
            )

        first = asyncio.run(drain())
        np.testing.assert_array_equal(first, mechanism.answer_boxes(boxes))
        mechanism.partial_fit_points(
            rng.integers(0, side, size=(1000, 2)), np.random.default_rng(seed + 3)
        )
        second = asyncio.run(drain())
        np.testing.assert_array_equal(second, mechanism.answer_boxes(boxes))
