"""Property-based tests for workload generation and exact evaluation."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.data.workloads import (
    all_range_queries,
    evaluate_exact,
    fixed_length_queries,
    prefix_queries,
    random_range_queries,
)

domains = st.integers(min_value=2, max_value=200)


@given(domain=domains)
@settings(max_examples=50, deadline=None)
def test_all_range_queries_count_and_validity(domain):
    workload = all_range_queries(domain)
    assert len(workload) == domain * (domain + 1) // 2
    assert np.all(workload.queries[:, 0] <= workload.queries[:, 1])
    assert workload.queries.max() < domain


@given(domain=domains, data=st.data())
@settings(max_examples=50, deadline=None)
def test_fixed_length_queries_have_requested_length(domain, data):
    length = data.draw(st.integers(min_value=1, max_value=domain))
    workload = fixed_length_queries(domain, length)
    assert len(workload) == domain - length + 1
    assert np.all(workload.lengths == length)


@given(domain=domains)
@settings(max_examples=50, deadline=None)
def test_prefix_queries_are_nested(domain):
    workload = prefix_queries(domain)
    assert np.all(workload.queries[:, 0] == 0)
    assert np.all(np.diff(workload.queries[:, 1]) == 1)


@given(
    domain=domains,
    count=st.integers(min_value=0, max_value=100),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=50, deadline=None)
def test_random_queries_valid(domain, count, seed):
    workload = random_range_queries(domain, count, random_state=seed)
    assert len(workload) == count
    if count:
        assert workload.queries.max() < domain
        assert np.all(workload.queries[:, 0] <= workload.queries[:, 1])


@given(
    counts=hnp.arrays(
        dtype=np.int64, shape=st.integers(2, 64), elements=st.integers(0, 1000)
    ),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=100, deadline=None)
def test_exact_evaluation_matches_direct_sum(counts, seed):
    domain = counts.shape[0]
    workload = random_range_queries(domain, 20, random_state=seed)
    answers = evaluate_exact(counts, workload.queries)
    total = counts.sum()
    for (start, end), answer in zip(workload.queries, answers):
        expected = counts[start : end + 1].sum() / total if total else 0.0
        np.testing.assert_allclose(answer, expected, atol=1e-12)


@given(
    counts=hnp.arrays(dtype=np.int64, shape=32, elements=st.integers(0, 1000)),
)
@settings(max_examples=100, deadline=None)
def test_prefix_answers_are_monotone(counts):
    workload = prefix_queries(32)
    answers = evaluate_exact(counts, workload.queries)
    assert np.all(np.diff(answers) >= -1e-12)
