"""One entry point per table / figure of the paper's evaluation (Section 5).

Every function returns plain data structures (lists/dicts of
:class:`~repro.experiments.runner.CellResult` or floats) so the benchmark
scripts can both print paper-style tables and assert on the qualitative
claims (who wins where).  All functions accept an
:class:`~repro.experiments.config.ExperimentConfig` so the same code runs at
laptop scale (default) or at the paper's original scale
(:data:`~repro.experiments.config.PAPER_SCALE`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.metrics import mean_squared_error, quantile_errors
from repro.centralized.hierarchical import CentralHierarchicalHistogram
from repro.centralized.wavelet import PriveletWavelet
from repro.core.factory import mechanism_from_spec
from repro.core.quantiles import DECILES, estimate_quantiles
from repro.data.synthetic import cauchy_probabilities, expected_counts
from repro.data.workloads import (
    RangeWorkload,
    all_range_queries,
    fixed_length_queries,
    prefix_queries,
    random_range_queries,
    sampled_range_queries,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import CellResult, evaluate_mechanism, run_epsilon_grid
from repro.privacy.randomness import spawn_generators

__all__ = [
    "default_range_workload",
    "figure4_branching_factor",
    "table5_epsilon_ranges",
    "table6_epsilon_prefix",
    "table7_centralized_comparison",
    "figure8_distribution_shift",
    "figure9_quantiles",
    "ablation_sampling_vs_splitting",
    "ablation_consistency",
]

#: The four methods compared in Tables 5 and 6 of the paper.
TABLE_METHODS = ("hhc_2", "hhc_4", "hhc_16", "haar")


def default_range_workload(
    domain_size: int, max_queries: int, seed: int = 0
) -> RangeWorkload:
    """The paper's workload policy: exhaustive when feasible, sampled otherwise.

    All ``D (D + 1) / 2`` ranges are used when that fits inside
    ``max_queries``; otherwise ranges start at evenly spaced points (the
    strategy used for ``D = 2^20`` / ``2^22``) and the result is subsampled
    down to ``max_queries`` for bounded runtime.
    """
    total = domain_size * (domain_size + 1) // 2
    if total <= max_queries:
        return all_range_queries(domain_size)
    # Pick a start step so the number of sampled starts stays manageable.
    starts = max(2, int(np.ceil(2.0 * max_queries / domain_size)))
    step = max(1, domain_size // starts)
    workload = sampled_range_queries(domain_size, start_step=step)
    return workload.subset(max_queries, random_state=seed)


def _dataset(config: ExperimentConfig, domain_size: int) -> np.ndarray:
    return config.data.counts(domain_size, config.n_users)


# ----------------------------------------------------------------------
# Figure 4 — impact of branching factor B and range length r
# ----------------------------------------------------------------------
def figure4_branching_factor(
    config: ExperimentConfig,
    domain_size: int,
    query_lengths: Optional[Sequence[int]] = None,
    branching_factors: Optional[Sequence[int]] = None,
    include_olh: Optional[bool] = None,
    mode: str = "aggregate",
) -> Dict[int, List[CellResult]]:
    """MSE of every method as the branching factor varies (Figure 4).

    Returns ``{query_length: [CellResult, ...]}`` where the cells cover
    ``TreeOUE[CI]`` and ``TreeHRR[CI]`` for every branching factor, the flat
    OUE baseline (plotted by the paper as ``B = D``), ``HaarHRR`` (plotted
    as ``B = 2``) and, for small domains, ``TreeOLH[CI]``.
    """
    if query_lengths is None:
        # Four representative lengths spanning point queries to nearly the
        # whole domain, mirroring the columns of Figure 4.
        query_lengths = sorted(
            {1, max(2, domain_size // 256), max(4, domain_size // 16), domain_size // 2}
        )
    if branching_factors is None:
        branching_factors = [b for b in (2, 4, 8, 16, 32, 64) if b < domain_size]
    if include_olh is None:
        include_olh = domain_size <= 256
    counts = _dataset(config, domain_size)
    results: Dict[int, List[CellResult]] = {}
    seeds = spawn_generators(config.seed, len(list(query_lengths)))
    for length, seed in zip(query_lengths, seeds):
        workload = fixed_length_queries(domain_size, int(length)).subset(
            config.max_queries_per_workload, random_state=seed
        )
        specs: List[str] = ["flat_oue", "haar"]
        for branching in branching_factors:
            for oracle in ("oue", "hrr"):
                specs.append(f"hh_{branching}_{oracle}")
                specs.append(f"hhc_{branching}_{oracle}")
            if include_olh:
                specs.append(f"hh_{branching}_olh")
                specs.append(f"hhc_{branching}_olh")
        cells: List[CellResult] = []
        for spec in specs:
            cells.append(
                evaluate_mechanism(
                    spec,
                    counts,
                    workload,
                    epsilon=config.epsilon,
                    repetitions=config.repetitions,
                    random_state=seed,
                    mode=mode,
                )
            )
        results[int(length)] = cells
    return results


# ----------------------------------------------------------------------
# Tables 5 and 6 — epsilon sweeps for range and prefix queries
# ----------------------------------------------------------------------
def table5_epsilon_ranges(
    config: ExperimentConfig,
    domain_size: int,
    methods: Sequence[str] = TABLE_METHODS,
    mode: str = "aggregate",
) -> List[CellResult]:
    """The Table-5 grid: MSE (x1000) of each method at each epsilon."""
    counts = _dataset(config, domain_size)
    workload = default_range_workload(
        domain_size, config.max_queries_per_workload, seed=config.seed
    )
    return run_epsilon_grid(
        methods,
        counts,
        workload,
        epsilons=config.epsilons,
        repetitions=config.repetitions,
        random_state=config.seed,
        mode=mode,
        workers=config.workers,
    )


def table6_epsilon_prefix(
    config: ExperimentConfig,
    domain_size: int,
    methods: Sequence[str] = TABLE_METHODS,
    mode: str = "aggregate",
) -> List[CellResult]:
    """The Table-6 grid: prefix-query MSE (x1000) per method and epsilon."""
    counts = _dataset(config, domain_size)
    workload = prefix_queries(domain_size).subset(
        config.max_queries_per_workload, random_state=config.seed
    )
    return run_epsilon_grid(
        methods,
        counts,
        workload,
        epsilons=config.epsilons,
        repetitions=config.repetitions,
        random_state=config.seed,
        mode=mode,
        workers=config.workers,
    )


# ----------------------------------------------------------------------
# Figure 7 — centralized-case comparison (Qardaji et al. Table 3)
# ----------------------------------------------------------------------
def table7_centralized_comparison(
    config: ExperimentConfig,
    domain_sizes: Sequence[int] = (256, 512, 1024, 2048),
    epsilon: float = 1.0,
    max_queries: int = 4000,
) -> Dict[int, Dict[str, float]]:
    """Average squared error of centralized Wavelet vs HHc_16 vs HHc_2.

    For every domain size the three centralized mechanisms are fitted
    ``config.repetitions`` times on the Cauchy dataset and their average
    squared error over (a sample of) all range queries is recorded, along
    with the ``Wavelet / HHc_16`` and ``HHc_2 / HHc_16`` ratios — the
    quantities the paper quotes from Qardaji et al. to contrast with the
    local setting where the two families are nearly tied.

    Errors are reported on *unnormalized counts* (like Qardaji et al.), so
    the absolute values are comparable across domain sizes.

    The query workload is drawn uniformly at random (rather than from
    evenly spaced starting points) so that no method benefits from queries
    accidentally aligned with its tree levels — Qardaji et al. average over
    *all* ranges, which random sampling approximates without bias.
    """
    results: Dict[int, Dict[str, float]] = {}
    seeds = spawn_generators(config.seed, len(list(domain_sizes)))
    for domain_size, seed in zip(domain_sizes, seeds):
        counts = _dataset(config, int(domain_size)).astype(np.float64)
        workload = random_range_queries(
            int(domain_size), max_queries, random_state=config.seed
        )
        true_counts_answers = workload.true_answers(counts) * counts.sum()
        per_method: Dict[str, List[float]] = {"wavelet": [], "hhc_16": [], "hhc_2": []}
        reps = spawn_generators(seed, config.repetitions)
        for rng in reps:
            wavelet = PriveletWavelet(epsilon, int(domain_size)).fit_counts(counts, rng)
            hh16 = CentralHierarchicalHistogram(
                epsilon, int(domain_size), branching=16, consistency=True
            ).fit_counts(counts, rng)
            hh2 = CentralHierarchicalHistogram(
                epsilon, int(domain_size), branching=2, consistency=True
            ).fit_counts(counts, rng)
            for name, mechanism in (("wavelet", wavelet), ("hhc_16", hh16), ("hhc_2", hh2)):
                answers = mechanism.answer_ranges(workload.queries, normalized=False)
                per_method[name].append(
                    mean_squared_error(true_counts_answers, answers)
                )
        row = {name: float(np.mean(values)) for name, values in per_method.items()}
        row["wavelet/hhc_16"] = row["wavelet"] / row["hhc_16"]
        row["hhc_2/hhc_16"] = row["hhc_2"] / row["hhc_16"]
        results[int(domain_size)] = row
    return results


# ----------------------------------------------------------------------
# Figure 8 — impact of the input distribution center P
# ----------------------------------------------------------------------
def figure8_distribution_shift(
    config: ExperimentConfig,
    domain_size: int,
    centers: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9),
    methods: Sequence[str] = ("hhc_4", "haar"),
    mode: str = "aggregate",
) -> Dict[float, List[CellResult]]:
    """MSE as the Cauchy center ``P`` moves across the domain (Figure 8)."""
    workload = default_range_workload(
        domain_size, config.max_queries_per_workload, seed=config.seed
    )
    results: Dict[float, List[CellResult]] = {}
    seeds = spawn_generators(config.seed, len(list(centers)))
    for center, seed in zip(centers, seeds):
        probabilities = cauchy_probabilities(
            domain_size,
            center_fraction=float(center),
            height_fraction=config.data.height_fraction,
        )
        counts = expected_counts(probabilities, config.n_users)
        cells = [
            evaluate_mechanism(
                spec,
                counts,
                workload,
                epsilon=config.epsilon,
                repetitions=config.repetitions,
                random_state=seed,
                mode=mode,
            )
            for spec in methods
        ]
        results[float(center)] = cells
    return results


# ----------------------------------------------------------------------
# Figure 9 — decile (quantile) estimation
# ----------------------------------------------------------------------
def figure9_quantiles(
    config: ExperimentConfig,
    domain_size: int,
    centers: Sequence[float] = (0.1, 0.5),
    methods: Sequence[str] = ("hhc_2", "haar"),
    targets: Sequence[float] = DECILES,
    mode: str = "aggregate",
) -> Dict[float, Dict[str, Dict[str, np.ndarray]]]:
    """Value error and quantile error of the deciles (Figure 9).

    Returns ``{center P: {method: {"value_error": ..., "quantile_error":
    ...}}}`` where each error array has one entry per decile, averaged over
    the configured repetitions.
    """
    results: Dict[float, Dict[str, Dict[str, np.ndarray]]] = {}
    seeds = spawn_generators(config.seed, len(list(centers)))
    for center, center_seed in zip(centers, seeds):
        probabilities = cauchy_probabilities(
            domain_size,
            center_fraction=float(center),
            height_fraction=config.data.height_fraction,
        )
        counts = expected_counts(probabilities, config.n_users)
        per_method: Dict[str, Dict[str, np.ndarray]] = {}
        for spec in methods:
            value_errors = np.zeros(len(list(targets)))
            quantile_errs = np.zeros(len(list(targets)))
            reps = spawn_generators(center_seed, config.repetitions)
            for rng in reps:
                mechanism = mechanism_from_spec(
                    spec, epsilon=config.epsilon, domain_size=domain_size
                )
                mechanism.fit_counts(counts, random_state=rng, mode=mode)
                returned = estimate_quantiles(mechanism, targets)
                errors = quantile_errors(counts, targets, returned)
                value_errors += errors["value_error"]
                quantile_errs += errors["quantile_error"]
            per_method[spec] = {
                "value_error": value_errors / config.repetitions,
                "quantile_error": quantile_errs / config.repetitions,
            }
        results[float(center)] = per_method
    return results


# ----------------------------------------------------------------------
# Ablations (design choices called out in DESIGN.md)
# ----------------------------------------------------------------------
def ablation_sampling_vs_splitting(
    config: ExperimentConfig,
    domain_size: int,
    branching: int = 4,
    mode: str = "aggregate",
) -> Dict[str, CellResult]:
    """Level *sampling* vs budget *splitting* (Section 4.4 design choice)."""
    counts = _dataset(config, domain_size)
    workload = default_range_workload(
        domain_size, config.max_queries_per_workload, seed=config.seed
    )
    results: Dict[str, CellResult] = {}
    for label, strategy in (("sampling", "sampling"), ("splitting", "splitting")):
        results[label] = evaluate_mechanism(
            f"hhc_{branching}",
            counts,
            workload,
            epsilon=config.epsilon,
            repetitions=config.repetitions,
            random_state=config.seed,
            mode=mode,
            mechanism_kwargs={"budget_strategy": strategy},
        )
    return results


def ablation_consistency(
    config: ExperimentConfig,
    domain_size: int,
    branching_factors: Sequence[int] = (2, 4, 8, 16),
    mode: str = "aggregate",
) -> Dict[int, Dict[str, CellResult]]:
    """Constrained inference on vs off for every branching factor."""
    counts = _dataset(config, domain_size)
    workload = default_range_workload(
        domain_size, config.max_queries_per_workload, seed=config.seed
    )
    results: Dict[int, Dict[str, CellResult]] = {}
    for branching in branching_factors:
        results[int(branching)] = {
            "raw": evaluate_mechanism(
                f"hh_{branching}",
                counts,
                workload,
                epsilon=config.epsilon,
                repetitions=config.repetitions,
                random_state=config.seed,
                mode=mode,
            ),
            "consistent": evaluate_mechanism(
                f"hhc_{branching}",
                counts,
                workload,
                epsilon=config.epsilon,
                repetitions=config.repetitions,
                random_state=config.seed,
                mode=mode,
            ),
        }
    return results
