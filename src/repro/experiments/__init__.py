"""Experiment harness regenerating the paper's tables and figures.

* :mod:`repro.experiments.config` — experiment configuration dataclasses
  with both laptop-scale defaults and the paper's original parameters;
* :mod:`repro.experiments.runner` — generic "mechanisms x parameters x
  workload" sweep with repetitions and error summaries, optionally fanned
  out across worker processes (``workers=``, bit-identical to serial);
* :mod:`repro.experiments.figures` — one entry point per table / figure of
  Section 5 (Figure 4, Tables 5 and 6, Figure 7, Figure 8, Figure 9) plus
  the design-choice ablations called out in DESIGN.md;
* :mod:`repro.experiments.reporting` — plain-text rendering of result
  tables in the same layout as the paper;
* :mod:`repro.experiments.bench` — the repo-wide benchmark harness behind
  ``python -m repro bench``, writing ``BENCH_<suite>.json`` perf records
  (imported lazily — ``from repro.experiments.bench import run_suite`` —
  so non-bench users don't pay for its streaming/persist dependencies).
"""

from repro.experiments.config import DataConfig, ExperimentConfig, PAPER_SCALE, LAPTOP_SCALE
from repro.experiments.runner import CellResult, evaluate_mechanism, run_epsilon_grid
from repro.experiments.reporting import format_table, render_results

__all__ = [
    "DataConfig",
    "ExperimentConfig",
    "PAPER_SCALE",
    "LAPTOP_SCALE",
    "CellResult",
    "evaluate_mechanism",
    "run_epsilon_grid",
    "format_table",
    "render_results",
]
